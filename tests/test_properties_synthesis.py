"""Property-based tests of the paper's core claims on random expressions."""

import pytest

from repro.boolexpr import equivalent, parse, to_nnf
from repro.core import (
    check_differential_function,
    check_fully_connected,
    enhance_fc_dpdn,
    synthesize_fc_dpdn,
    transform_to_fc,
)
from repro.core.transform import NotDualError
from repro.network import (
    NotSeriesParallelError,
    build_genuine_dpdn,
    is_fully_connected,
    realized_function,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import assume, given, settings, HealthCheck

from strategies import expression_strategy


def _non_constant(expr):
    from repro.boolexpr import is_contradiction, is_tautology

    return not (is_tautology(expr) or is_contradiction(expr))


SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestSynthesisProperties:
    @given(expression_strategy(max_leaves=6))
    @settings(**SETTINGS)
    def test_synthesised_network_is_fully_connected_and_correct(self, expr):
        assume(_non_constant(expr))
        dpdn = synthesize_fc_dpdn(expr)
        assert check_differential_function(dpdn, expr).passed
        assert check_fully_connected(dpdn).passed

    @given(expression_strategy(max_leaves=6))
    @settings(**SETTINGS)
    def test_device_count_is_twice_the_literal_count_of_the_factored_form(self, expr):
        assume(_non_constant(expr))
        nnf = to_nnf(expr)
        dpdn = synthesize_fc_dpdn(expr)
        assert dpdn.device_count() == 2 * nnf.literal_count()

    @given(expression_strategy(max_leaves=5))
    @settings(**SETTINGS)
    def test_exactly_one_branch_conducts_for_every_event(self, expr):
        assume(_non_constant(expr))
        dpdn = synthesize_fc_dpdn(expr)
        for _, (x_on, y_on) in realized_function(dpdn).items():
            assert x_on != y_on


class TestTransformProperties:
    @given(expression_strategy(max_leaves=5))
    @settings(**SETTINGS)
    def test_transformation_preserves_function_and_device_count(self, expr):
        assume(_non_constant(expr))
        genuine = build_genuine_dpdn(expr)
        try:
            transformed = transform_to_fc(genuine)
        except (NotDualError, NotSeriesParallelError):
            # Redundant factored forms (e.g. repeated literals from XOR
            # lowering) may not be structural duals; that is outside the
            # method's stated input domain.
            assume(False)
            return
        assert transformed.device_count() == genuine.device_count()
        assert check_differential_function(transformed, expr).passed
        assert is_fully_connected(transformed)


class TestEnhancementProperties:
    @given(expression_strategy(max_leaves=4))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much])
    def test_enhancement_preserves_function_and_connectivity(self, expr):
        assume(_non_constant(expr))
        fc = synthesize_fc_dpdn(expr)
        enhanced = enhance_fc_dpdn(fc)
        assert check_differential_function(enhanced, expr).passed
        assert is_fully_connected(enhanced)
        assert enhanced.device_count() >= fc.device_count()
