"""Back-annotated parasitics in the energy models: identity and leakage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boolexpr import parse
from repro.core.synthesis import synthesize_fc_dpdn
from repro.electrical.capacitance import extract_capacitances
from repro.electrical.energy import CycleEnergySimulator, EventEnergyModel
from repro.electrical.technology import Technology, generic_180nm
from repro.flow import TechnologyConfig
from repro.layout import layout_circuit
from repro.power.trace import acquire_circuit_traces, build_sbox_circuit
from repro.sabl.simulator import BatchedCircuitEnergyModel, CircuitPowerSimulator


@pytest.fixture(scope="module")
def circuit():
    return build_sbox_circuit(0xB)


def uniform_loads(circuit, value):
    return {gate.output_net: (value, value) for gate in circuit.gates}


class TestTechnologyCard:
    """Satellite: the new per-um constants are first-class card fields."""

    def test_describe_includes_the_wire_constants(self):
        text = generic_180nm().describe()
        assert "c_wire_per_um" in text
        assert "route_pitch" in text

    def test_scaled_round_trips_the_new_fields(self):
        scaled = generic_180nm().scaled(c_wire_per_um=0.5e-15, route_pitch_um=3.5)
        assert scaled.c_wire_per_um == 0.5e-15
        assert scaled.route_pitch_um == 3.5
        # every other field survives the override untouched
        base = generic_180nm()
        assert scaled.scaled(
            c_wire_per_um=base.c_wire_per_um, route_pitch_um=base.route_pitch_um
        ) == base

    def test_every_field_survives_a_scaled_identity_pass(self):
        from dataclasses import fields

        base = generic_180nm()
        values = {f.name: getattr(base, f.name) for f in fields(Technology)}
        assert base.scaled(**values) == base

    def test_technology_config_accepts_the_new_overrides(self):
        config = TechnologyConfig(overrides={"c_wire_per_um": 0.3e-15})
        assert config.overrides["c_wire_per_um"] == 0.3e-15


class TestExtractionOverrides:
    def test_wire_overrides_replace_the_class_constant(self):
        dpdn = synthesize_fc_dpdn(parse("A & B"))
        tech = generic_180nm()
        base = extract_capacitances(dpdn, tech)
        routed = extract_capacitances(
            dpdn, tech, wire_overrides={dpdn.x: 5e-15, dpdn.y: 1e-15}
        )
        delta_x = routed.capacitance(dpdn.x) - base.capacitance(dpdn.x)
        delta_y = routed.capacitance(dpdn.y) - base.capacitance(dpdn.y)
        assert delta_x == pytest.approx(5e-15 - tech.c_wire_output)
        assert delta_y == pytest.approx(1e-15 - tech.c_wire_output)

    def test_uniform_override_is_bit_identical(self):
        dpdn = synthesize_fc_dpdn(parse("(A | B) & C"))
        tech = generic_180nm()
        base = extract_capacitances(dpdn, tech)
        uniform = extract_capacitances(
            dpdn,
            tech,
            wire_overrides={dpdn.x: tech.c_wire_output, dpdn.y: tech.c_wire_output},
        )
        assert dict(base.node_capacitance) == dict(uniform.node_capacitance)

    def test_unknown_override_node_is_rejected(self):
        dpdn = synthesize_fc_dpdn(parse("A & B"))
        with pytest.raises(ValueError, match="unknown nodes"):
            extract_capacitances(dpdn, generic_180nm(), wire_overrides={"nope": 1e-15})


class TestSwingExcess:
    def test_matched_pair_has_zero_excess(self):
        dpdn = synthesize_fc_dpdn(parse("A & B"))
        model = EventEnergyModel(dpdn, wire_load=(2e-15, 2e-15))
        assert model.swing_excess(True) == 0.0
        assert model.swing_excess(False) == 0.0

    def test_heavier_rail_pays_its_excess(self):
        dpdn = synthesize_fc_dpdn(parse("A & B"))
        model = EventEnergyModel(dpdn, wire_load=(3e-15, 2e-15))
        assert model.swing_excess(True) == pytest.approx(1e-15)
        assert model.swing_excess(False) == 0.0

    def test_mismatch_makes_the_event_energy_value_dependent(self):
        dpdn = synthesize_fc_dpdn(parse("A & B"))
        matched = EventEnergyModel(dpdn, wire_load=(2e-15, 2e-15))
        skewed = EventEnergyModel(dpdn, wire_load=(4e-15, 2e-15))
        high = {"A": True, "B": True}   # output 1: true rail swings
        low = {"A": False, "B": False}  # output 0: false rail swings
        assert matched.event_energy(high) == pytest.approx(matched.event_energy(low))
        assert skewed.event_energy(high) > skewed.event_energy(low)

    def test_wire_load_requires_a_function_annotation(self):
        from repro.network.netlist import DifferentialPullDownNetwork, Literal

        dpdn = DifferentialPullDownNetwork(name="bare")
        dpdn.add_transistor(Literal("A"), dpdn.x, dpdn.z)
        dpdn.add_transistor(Literal("A", False), dpdn.y, dpdn.z)
        with pytest.raises(ValueError, match="function annotation"):
            EventEnergyModel(dpdn, wire_load=(1e-15, 2e-15))


class TestStreamIdentity:
    """The acceptance pins: uniform annotation == legacy, bit for bit."""

    @pytest.mark.parametrize("gate_style", ["sabl", "cvsl"])
    @pytest.mark.parametrize("batch_size", [None, 64])
    def test_uniform_c_wire_output_reproduces_legacy_streams(
        self, circuit, gate_style, batch_size
    ):
        tech = generic_180nm()
        legacy = acquire_circuit_traces(
            circuit, 0xB, 160, gate_style=gate_style, batch_size=batch_size
        )
        annotated = acquire_circuit_traces(
            circuit,
            0xB,
            160,
            gate_style=gate_style,
            batch_size=batch_size,
            net_loads=uniform_loads(circuit, tech.c_wire_output),
        )
        assert np.array_equal(legacy.plaintexts, annotated.plaintexts)
        assert np.array_equal(legacy.traces, annotated.traces)

    def test_batched_and_sequential_agree_with_mismatched_loads(self, circuit):
        layout = layout_circuit(circuit, generic_180nm(), router="unbalanced", seed=7)
        loads = layout.parasitics.rail_loads()
        batched = acquire_circuit_traces(circuit, 0xB, 120, net_loads=loads)
        sequential = acquire_circuit_traces(
            circuit, 0xB, 120, batch_size=None, net_loads=loads
        )
        assert np.array_equal(batched.traces, sequential.traces)

    def test_simulators_see_per_gate_loads(self, circuit):
        loads = uniform_loads(circuit, 2e-15)
        loads.pop(circuit.gates[0].output_net)  # absent nets keep the constant
        for simulator_cls in (CircuitPowerSimulator, BatchedCircuitEnergyModel):
            simulator_cls(circuit, net_loads=loads)  # construction validates

    def test_fat_routing_keeps_the_circuit_constant_power(self, circuit):
        layout = layout_circuit(circuit, generic_180nm(), router="fat", seed=7)
        traces = acquire_circuit_traces(
            circuit, 0xB, 200, net_loads=layout.parasitics.rail_loads()
        )
        spread = np.ptp(traces.traces) / np.mean(traces.traces)
        assert spread < 1e-12  # constant up to float round-off

    def test_unbalanced_routing_breaks_constant_power(self, circuit):
        layout = layout_circuit(circuit, generic_180nm(), router="unbalanced", seed=7)
        traces = acquire_circuit_traces(
            circuit, 0xB, 200, net_loads=layout.parasitics.rail_loads()
        )
        spread = np.ptp(traces.traces) / np.mean(traces.traces)
        assert spread > 1e-6

    @pytest.mark.parametrize("style", ["sabl", "cvsl"])
    def test_cycle_simulator_charges_the_excess_exactly_once(self, style):
        # The imbalance excess must be charged once per selecting cycle
        # for *every* style: SABL discharges both outputs (the matched
        # baseline cancels), CVSL only the conducting one -- the matched
        # baseline keeps that accounting data-independent too.
        dpdn = synthesize_fc_dpdn(parse("A & B"))
        tech = generic_180nm()
        matched = CycleEnergySimulator(dpdn, tech, style=style, wire_load=(2e-15, 2e-15))
        skewed = CycleEnergySimulator(dpdn, tech, style=style, wire_load=(3e-15, 2e-15))
        high = {"A": True, "B": True}   # output 1: true (heavier) rail swings
        low = {"A": False, "B": False}  # output 0: false rail swings
        matched_records = matched.run([high, low])
        skewed_records = skewed.run([high, low])
        # output-1 cycles pay exactly the 1 fF excess over the matched pair...
        assert skewed_records[0].energy - matched_records[0].energy == pytest.approx(
            tech.switching_energy(1e-15)
        )
        # ...and output-0 cycles pay nothing extra
        assert skewed_records[1].energy == pytest.approx(matched_records[1].energy)

    def test_sabl_matched_pair_stays_constant_power(self):
        dpdn = synthesize_fc_dpdn(parse("A & B"))
        matched = CycleEnergySimulator(dpdn, generic_180nm(), wire_load=(2e-15, 2e-15))
        high = {"A": True, "B": True}
        low = {"A": False, "B": False}
        records = matched.run([high, low])
        assert records[0].energy == pytest.approx(records[1].energy)

    def test_explicit_capacitances_conflict_with_wire_load(self):
        dpdn = synthesize_fc_dpdn(parse("A & B"))
        tech = generic_180nm()
        with pytest.raises(ValueError, match="not both"):
            EventEnergyModel(
                dpdn,
                tech,
                capacitances=extract_capacitances(dpdn, tech),
                wire_load=(1e-15, 2e-15),
            )
