"""Executor hardening: persistent pools, failure injection, transport.

Pins the contracts PR 9 introduced:

* worker pools are persistent (same worker pids across ``map`` calls)
  and reclaimable via ``shutdown_pools``;
* a shard task that raises surfaces as :class:`ShardTaskError` with
  shard and flow context on *both* the serial and process backends;
* a worker that dies mid-shard trips the per-shard timeout
  (:class:`ShardTimeoutError`) instead of hanging the map, and the
  broken pool is evicted so the next map starts fresh;
* an empty payload list maps to an empty result list on every backend;
* the shared-memory result transport is bit-identical to the pickle
  pipe at 2 and 4 workers, for traces and assessment accumulators, and
  leaks no segments -- on success or failure;
* spawn-started pools match fork-started pools bit for bit.
"""

import glob
import os
import time

import numpy as np
import pytest

from repro.engine import (
    ShardTaskError,
    ShardTimeoutError,
    default_start_method,
    get_executor,
    register_executor,
    shutdown_pools,
    warm_pool,
)
from repro.engine.executors import _WARM_POOLS, ProcessPoolExecutor, SerialExecutor
from repro.engine.transport import (
    ShmBlock,
    attach_array,
    export_array,
    new_transport_token,
    release_segments,
    segment_name,
    sweep_segments,
)
from repro.flow import (
    ASSESSMENTS,
    AssessmentConfig,
    CampaignConfig,
    DesignFlow,
    ExecutionConfig,
    FlowConfig,
    register_assessment,
)

TRACES = 48
SHARD = 16


def _sbox_flow(execution, **campaign):
    config = FlowConfig(
        name="executor_test",
        campaign=CampaignConfig(
            key=0xB, trace_count=TRACES, noise_std=0.01, **campaign
        ),
        execution=execution,
    )
    return DesignFlow.sbox(config=config)


# Module-level so they pickle into pool workers.


def _echo(payload):
    return payload


def _boom(payload):
    raise ValueError(f"injected failure for {payload!r}")


def _die(_payload):
    # Simulates a worker killed mid-shard (OOM killer, segfault): the
    # process vanishes without returning a result or an exception.
    os._exit(13)


def _pid(_payload):
    return os.getpid()


def _pid_slow(_payload):
    # Slow enough that one worker cannot swallow the whole map before
    # its sibling finishes booting -- pid-set comparisons across maps
    # need every worker to actually participate.
    time.sleep(0.1)
    return os.getpid()


def _leftover_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return glob.glob("/dev/shm/rs*")


class TestExecutorBasics:
    def test_empty_payload_map_is_empty_on_every_backend(self):
        assert SerialExecutor().map(_echo, []) == []
        assert get_executor("process", 2).map(_echo, []) == []

    def test_results_come_back_in_payload_order(self):
        assert get_executor("process", 2).map(_echo, list(range(7))) == list(
            range(7)
        )

    def test_task_exception_reraises_in_parent(self):
        with pytest.raises(ValueError, match="injected failure"):
            get_executor("process", 2).map(_boom, [1, 2])
        # The pool survives a task error and stays warm.
        assert get_executor("process", 2).map(_echo, [3]) == [3]

    def test_serial_task_exception_reraises(self):
        with pytest.raises(ValueError, match="injected failure"):
            SerialExecutor().map(_boom, [1])

    def test_invalid_construction_is_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessPoolExecutor(0)
        with pytest.raises(ValueError, match="start method"):
            ProcessPoolExecutor(2, start_method="warp-drive")
        with pytest.raises(ValueError, match="timeout"):
            ProcessPoolExecutor(2, timeout=0.0)

    def test_get_executor_forwards_only_accepted_options(self):
        executor = get_executor("process", 2, start_method="fork", timeout=1.5)
        assert executor.start_method == "fork"
        assert executor.timeout == 1.5
        # A minimal (workers)->Executor factory must keep working even
        # when the runner passes the full option set.
        register_executor("plain", lambda workers: SerialExecutor())
        try:
            executor = get_executor("plain", 2, start_method="fork", timeout=9.0)
            assert isinstance(executor, SerialExecutor)
        finally:
            from repro.engine import EXECUTORS

            EXECUTORS.unregister("plain")

    def test_default_start_method_is_explicit(self):
        import multiprocessing

        method = default_start_method()
        assert method in multiprocessing.get_all_start_methods()
        assert ProcessPoolExecutor(2).start_method == method


class TestPersistentPools:
    def test_pool_persists_across_map_calls(self):
        executor = get_executor("process", 2)
        first = set(executor.map(_pid_slow, range(8)))
        second = set(executor.map(_pid_slow, range(8)))
        assert first == second  # same worker processes, not a new pool
        assert not first & {os.getpid()}  # and actually out of process

    def test_two_executor_instances_share_one_pool(self):
        a = set(get_executor("process", 2).map(_pid_slow, range(8)))
        b = set(get_executor("process", 2).map(_pid_slow, range(8)))
        assert a == b

    def test_warm_pool_and_shutdown(self):
        shutdown_pools()
        assert _WARM_POOLS == {}
        warm_pool(2)
        assert (default_start_method(), 2) in _WARM_POOLS
        warm_pool(1)  # no pool needed for one worker
        assert (default_start_method(), 1) not in _WARM_POOLS
        shutdown_pools()
        assert _WARM_POOLS == {}


class TestWorkerDeath:
    def test_dead_worker_times_out_instead_of_hanging(self):
        executor = get_executor("process", 2, timeout=3.0)
        with pytest.raises(ShardTimeoutError) as excinfo:
            executor.map(_die, [0, 1])
        assert excinfo.value.payload_index == 0
        assert excinfo.value.timeout == 3.0
        # The broken pool was evicted: a fresh map works again.
        assert get_executor("process", 2).map(_echo, [7]) == [7]

    def test_timeout_error_pickles_with_context(self):
        import pickle

        error = pickle.loads(pickle.dumps(ShardTimeoutError(3, 2.5)))
        assert error.payload_index == 3 and error.timeout == 2.5


class TestShardTaskFailureInjection:
    """A shard task that raises, on both backends, with shard context."""

    @pytest.fixture()
    def boom_method(self):
        class BoomMethod:
            def update(self, chunk):
                raise RuntimeError("injected assessment failure")

            def merge(self, other):  # pragma: no cover - never reached
                pass

            def finalize(self):  # pragma: no cover - never reached
                return {}

        register_assessment("boom", lambda config: BoomMethod())
        yield
        ASSESSMENTS.unregister("boom")

    def _assessed_flow(self, execution):
        config = FlowConfig(
            name="boom_flow",
            campaign=CampaignConfig(key=0xB, trace_count=TRACES),
            assessment=AssessmentConfig(
                enabled=True, methods=("boom",), traces_per_class=40, chunk_size=16
            ),
            execution=execution,
        )
        return DesignFlow.sbox(config=config)

    def test_serial_backend_wraps_with_shard_context(self, boom_method):
        flow = self._assessed_flow(ExecutionConfig(workers=1, shard_size=20))
        with pytest.raises(ShardTaskError) as excinfo:
            flow.assessment()
        assert excinfo.value.shard_index == 0
        assert excinfo.value.flow_name == "boom_flow"
        assert "assessment shard 0" in str(excinfo.value)

    def test_process_backend_wraps_with_shard_context(self, boom_method):
        # Persistent pools forked before the fixture ran do not know the
        # "boom" method; pools forked after do.  Either way the task
        # fails *in the worker* and must surface as a ShardTaskError
        # carrying the shard identity -- that indifference is the point.
        flow = self._assessed_flow(ExecutionConfig(workers=2, shard_size=20))
        with pytest.raises(ShardTaskError) as excinfo:
            flow.assessment()
        assert excinfo.value.shard_index is not None
        assert excinfo.value.flow_name == "boom_flow"
        assert "assessment shard" in str(excinfo.value)

    def test_shard_task_error_pickles_with_context(self):
        import pickle

        error = pickle.loads(
            pickle.dumps(ShardTaskError("msg", shard_index=4, flow_name="f"))
        )
        assert error.shard_index == 4 and error.flow_name == "f"


class TestSharedMemoryTransport:
    def test_export_attach_round_trip(self):
        token = new_transport_token()
        array = np.arange(24, dtype=np.float64).reshape(4, 6)
        block = export_array(array, segment_name(token, 0, "t"))
        assert isinstance(block, ShmBlock)
        view, segment = attach_array(block)
        try:
            assert np.array_equal(view, array)
        finally:
            release_segments([segment])
        assert _leftover_segments() == []

    def test_empty_array_round_trip(self):
        token = new_transport_token()
        block = export_array(np.empty((0, 3)), segment_name(token, 0, "p"))
        view, segment = attach_array(block)
        try:
            assert view.shape == (0, 3)
        finally:
            release_segments([segment])

    def test_sweep_removes_unclaimed_segments(self):
        token = new_transport_token()
        export_array(np.ones(8), segment_name(token, 0, "p"))
        export_array(np.ones(8), segment_name(token, 2, "t"))
        assert sweep_segments(token, 5, ("p", "t")) == 2
        assert sweep_segments(token, 5, ("p", "t")) == 0
        assert _leftover_segments() == []

    def test_segment_names_fit_the_posix_limit(self):
        # macOS rejects names longer than 31 chars (incl. the leading /).
        name = segment_name(new_transport_token(), 999999, "p")
        assert len(name) + 1 <= 31

    @pytest.mark.parametrize("workers", [2, 4])
    def test_trace_bit_identity_shm_vs_pipe_vs_serial(self, workers):
        serial = _sbox_flow(ExecutionConfig(workers=1, shard_size=SHARD)).traces()
        shm = _sbox_flow(
            ExecutionConfig(workers=workers, shard_size=SHARD)
        ).traces()
        piped = _sbox_flow(
            ExecutionConfig(workers=workers, shard_size=SHARD, shared_memory=False)
        ).traces()
        assert np.array_equal(serial.traces, shm.traces)
        assert np.array_equal(serial.plaintexts, shm.plaintexts)
        assert np.array_equal(serial.traces, piped.traces)
        assert np.array_equal(serial.plaintexts, piped.plaintexts)
        assert _leftover_segments() == []

    @pytest.mark.parametrize("workers", [2, 4])
    def test_assessment_bit_identity_across_transport(self, workers):
        def outcome(execution):
            config = FlowConfig(
                name="executor_test",
                campaign=CampaignConfig(key=0xB, trace_count=TRACES),
                assessment=AssessmentConfig(
                    enabled=True, traces_per_class=60, chunk_size=20
                ),
                execution=execution,
            )
            return DesignFlow.sbox(config=config).assessment()["ttest"]

        serial = outcome(ExecutionConfig(workers=1, shard_size=40))
        parallel = outcome(ExecutionConfig(workers=workers, shard_size=40))
        piped = outcome(
            ExecutionConfig(workers=workers, shard_size=40, shared_memory=False)
        )
        for order in (1, 2):
            assert serial.test(order).statistic == parallel.test(order).statistic
            assert serial.test(order).statistic == piped.test(order).statistic
        assert _leftover_segments() == []

    def test_failed_map_leaves_no_segments(self, tmp_path):
        executor = get_executor("process", 2, timeout=3.0)
        with pytest.raises(ShardTimeoutError):
            executor.map(_die, [0, 1])
        assert _leftover_segments() == []


class TestStartMethods:
    def test_spawn_matches_fork_and_serial_bitwise(self):
        serial = _sbox_flow(ExecutionConfig(workers=1, shard_size=SHARD)).traces()
        fork = _sbox_flow(
            ExecutionConfig(workers=2, shard_size=SHARD, start_method="fork")
        ).traces()
        spawn = _sbox_flow(
            ExecutionConfig(workers=2, shard_size=SHARD, start_method="spawn")
        ).traces()
        assert np.array_equal(serial.traces, fork.traces)
        assert np.array_equal(serial.traces, spawn.traces)
        assert np.array_equal(serial.plaintexts, spawn.plaintexts)
        assert _leftover_segments() == []

    def test_execution_config_validates_the_start_method(self):
        from repro.flow.config import ConfigError

        with pytest.raises(ConfigError, match="start_method"):
            ExecutionConfig(start_method="threads")
        with pytest.raises(ConfigError, match="shard_timeout"):
            ExecutionConfig(shard_timeout=-1.0)
        # Round-trips like every other config field.
        config = ExecutionConfig(
            workers=2, start_method="spawn", shard_timeout=30.0, shared_memory=False
        )
        assert ExecutionConfig.from_dict(config.to_dict()) == config
