"""End-to-end tests of the DesignFlow pipeline, configs and batching."""

import json

import numpy as np
import pytest

from repro.flow import (
    AnalysisConfig,
    CampaignConfig,
    CellConfig,
    ConfigError,
    DesignFlow,
    FlowConfig,
    FlowError,
    ScenarioConfig,
    SynthesisConfig,
    TechnologyConfig,
)
from repro.power import PRESENT_SBOX, acquire_circuit_traces, build_sbox_circuit


# ----------------------------------------------------------------------- config


class TestConfigs:
    def test_flow_config_round_trips_through_dict(self):
        config = FlowConfig(
            name="roundtrip",
            synthesis=SynthesisConfig(method="transform", decomposition="balanced"),
            technology=TechnologyConfig(name="generic_130nm", overrides={"vdd": 1.1}),
            cells=CellConfig(names=("AND2", "OR2")),
            scenario=ScenarioConfig(params={"sboxes": 2}),
            campaign=CampaignConfig(
                key=0x5, trace_count=64, noise_std=0.01, scenario="present_round"
            ),
            analysis=AnalysisConfig(attacks=("cpa",), target_bit=2, target_sbox=1),
        )
        rebuilt = FlowConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_to_dict_is_json_serialisable(self):
        config = FlowConfig(cells=CellConfig(names=("AND2",)))
        json.dumps(config.to_dict())

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            FlowConfig.from_dict({"name": "x", "turbo": True})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"method": "magic"},
            {"decomposition": "spiral"},
        ],
    )
    def test_synthesis_validation(self, kwargs):
        with pytest.raises(ConfigError):
            SynthesisConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"key": -1},
            {"trace_count": 0},
            {"network_style": "open"},
            {"max_fanin": 1},
            {"noise_std": -0.1},
            {"batch_size": 0},
            {"source": "oscilloscope"},
            {"model_leakage": "cubic"},
        ],
    )
    def test_campaign_validation(self, kwargs):
        with pytest.raises(ConfigError):
            CampaignConfig(**kwargs)

    def test_technology_override_names_validated(self):
        with pytest.raises(ConfigError, match="unknown technology overrides"):
            TechnologyConfig(overrides={"not_a_field": 1.0})

    def test_analysis_validation(self):
        with pytest.raises(ConfigError):
            AnalysisConfig(attacks=())
        with pytest.raises(ConfigError):
            AnalysisConfig(target_bit=9)

    def test_replace_revalidates(self):
        config = CampaignConfig()
        with pytest.raises(ConfigError):
            config.replace(trace_count=-5)


# --------------------------------------------------------------------- pipeline


@pytest.fixture(scope="module")
def fc_flow():
    flow = DesignFlow.sbox(
        key=0xB, trace_count=600, noise_std=0.002, max_fanin=3, seed=7,
        config=FlowConfig(
            name="fc_flow",
            cells=CellConfig(names=("AND2", "OR2", "XOR2")),
            analysis=AnalysisConfig(attacks=("dom", "cpa"), target_bit=2),
        ),
    )
    flow.run()
    return flow


class TestDesignFlow:
    def test_full_run_covers_all_stages(self, fc_flow):
        assert fc_flow.computed_stages() == (
            "expressions", "synthesis", "verification", "library",
            "circuit", "layout", "traces", "analysis",
        )

    def test_stage_results_are_cached(self, fc_flow):
        assert fc_flow.result("traces") is fc_flow.result("traces")
        assert fc_flow.result("circuit").value is fc_flow.circuit()

    def test_invalidate_drops_downstream_only(self, fc_flow):
        circuit_result = fc_flow.result("circuit")
        synthesis_result = fc_flow.result("synthesis")
        fc_flow.invalidate("circuit")
        assert "traces" not in fc_flow.computed_stages()
        assert "analysis" not in fc_flow.computed_stages()
        assert fc_flow.result("synthesis") is synthesis_result
        # Recompute: a fresh circuit result replaces the dropped one.
        assert fc_flow.result("circuit") is not circuit_result
        fc_flow.run()

    def test_synthesized_networks_verify(self, fc_flow):
        reports = fc_flow.verification()
        assert set(reports) == set(fc_flow.expressions())
        assert all(report.passed for report in reports.values())

    def test_library_stage_builds_selected_cells(self, fc_flow):
        assert set(fc_flow.library()) == {"AND2", "OR2", "XOR2"}

    def test_protected_circuit_resists_dom_where_model_leaks(self, fc_flow):
        # The paper's claim through the new API: single-bit DPA recovers
        # the key from the unprotected leakage model but not from the
        # fully connected circuit.
        protected = fc_flow.analysis()["dom"]
        assert not protected.succeeded

        unprotected = DesignFlow.sbox(
            key=0xB, source="model", model_leakage="bit", trace_count=600,
            noise_std=0.25, seed=7,
            config=FlowConfig(
                name="model_flow",
                analysis=AnalysisConfig(attacks=("dom",), target_bit=2),
            ),
        )
        unprotected.run(["traces", "analysis"])
        assert unprotected.analysis()["dom"].succeeded

    def test_fc_traces_nearly_constant(self, fc_flow):
        details = fc_flow.result("traces").details
        assert details["nsd"] < 0.01

    def test_report_exports(self, fc_flow):
        report = fc_flow.report()
        payload = json.loads(report.to_json())
        assert payload["flow"] == "fc_flow"
        assert [entry["stage"] for entry in payload["stages"]] == list(
            fc_flow.computed_stages()
        )
        summary = report.format_summary()
        assert "traces" in summary and "analysis" in summary
        records = report.to_experiment_results()
        assert len(records) == 2
        assert all(record.matches_shape for record in records)

    def test_custom_expression_flow_stops_at_traces(self):
        flow = DesignFlow(
            {"F": "(A | B) & C"},
            FlowConfig(name="custom", campaign=CampaignConfig(trace_count=32)),
        )
        report = flow.run()
        assert "analysis" not in report.stages()
        assert len(flow.traces()) == 32
        with pytest.raises(FlowError, match="S-box"):
            flow.analysis()

    def test_expressions_accept_parsed_objects(self):
        from repro import parse

        flow = DesignFlow({"F": parse("A & B")})
        assert flow.expressions()["F"] is not None

    def test_bad_expression_raises_flow_error(self):
        flow = DesignFlow({"F": "A &&& B"})
        with pytest.raises(FlowError, match="cannot parse"):
            flow.expressions()

    def test_unknown_cells_listed(self):
        flow = DesignFlow.sbox(config=FlowConfig(cells=CellConfig(names=("NAND9",))))
        with pytest.raises(FlowError, match="NAND9"):
            flow.library()

    def test_transform_method_flow(self):
        flow = DesignFlow(
            {"F": "(A | B) & C"},
            FlowConfig(name="transform", synthesis=SynthesisConfig(method="transform")),
        )
        reports = flow.verification()
        assert reports["F"].passed

    def test_enhanced_flow_checks_constant_depth(self):
        flow = DesignFlow(
            {"F": "(A & B) | C"},
            FlowConfig(name="enhanced", synthesis=SynthesisConfig(enhance=True)),
        )
        assert flow.verification()["F"].passed

    def test_genuine_style_flow_runs(self):
        flow = DesignFlow.sbox(
            key=0x3, network_style="genuine", trace_count=64, max_fanin=3, seed=3
        )
        details = flow.result("traces").details
        assert details["count"] == 64

    def test_unknown_stage_rejected(self, fc_flow):
        with pytest.raises(FlowError, match="unknown stage"):
            fc_flow.result("deploy")

    def test_target_bit_outside_sbox_width_rejected(self):
        flow = DesignFlow.sbox(
            key=0x3, trace_count=16,
            config=FlowConfig(analysis=AnalysisConfig(attacks=("dom",), target_bit=6)),
        )
        with pytest.raises(FlowError, match="target_bit 6"):
            flow.analysis()

    def test_bit_model_traces_reject_out_of_range_target_bit(self):
        flow = DesignFlow.sbox(
            key=0x3, source="model", model_leakage="bit", trace_count=16,
            config=FlowConfig(analysis=AnalysisConfig(attacks=("dom",), target_bit=5)),
        )
        with pytest.raises(FlowError, match="target_bit 5"):
            flow.traces()

    def test_default_run_skips_library_without_configured_cells(self):
        flow = DesignFlow.sbox(key=0x2, trace_count=16, seed=1)
        report = flow.run()
        assert "library" not in report.stages()
        assert "analysis" in report.stages()

    def test_unknown_backend_in_config_raises_flow_error(self):
        flow = DesignFlow.sbox(key=0x2, gate_style="wddl", trace_count=16)
        with pytest.raises(FlowError, match="wddl.*available.*sabl"):
            flow.traces()

    def test_key_bounds_follow_selected_sbox(self):
        # A byte key is valid config but must not fit the 4-bit box...
        flow = DesignFlow.sbox(key=0x3A, trace_count=16)
        with pytest.raises(FlowError, match="does not fit"):
            flow.expressions()
        # ... while the 256-entry AES box accepts it for model campaigns.
        wide = DesignFlow.sbox(
            key=0x3A, source="model", sbox="aes", trace_count=16, seed=2
        )
        assert len(wide.traces()) == 16


# --------------------------------------------------------------------- batching


class TestBatchedAcquisition:
    @pytest.mark.parametrize("network_style", ["fc", "genuine"])
    def test_batched_equals_sequential(self, network_style):
        circuit = build_sbox_circuit(0xB, network_style, max_fanin=3)
        sequential = acquire_circuit_traces(
            circuit, 0xB, 200, noise_std=0.01, seed=3, batch_size=None
        )
        batched = acquire_circuit_traces(
            circuit, 0xB, 200, noise_std=0.01, seed=3, batch_size=64
        )
        assert np.array_equal(sequential.plaintexts, batched.plaintexts)
        assert np.allclose(sequential.traces, batched.traces, rtol=1e-12, atol=0.0)

    def test_batch_size_does_not_change_result(self):
        circuit = build_sbox_circuit(0x5, "genuine", max_fanin=2)
        small = acquire_circuit_traces(circuit, 0x5, 150, seed=9, batch_size=7)
        large = acquire_circuit_traces(circuit, 0x5, 150, seed=9, batch_size=4096)
        assert np.allclose(small.traces, large.traces, rtol=1e-12, atol=0.0)

    def test_empty_campaign_returns_empty_energies(self):
        from repro.sabl import BatchedCircuitEnergyModel

        circuit = build_sbox_circuit(0x1, "fc", max_fanin=3)
        model = BatchedCircuitEnergyModel(circuit)
        energies = model.energies(np.zeros((0, 4), dtype=bool))
        assert energies.shape == (0,)

    def test_flow_batched_matches_loop_campaign(self):
        base = FlowConfig(name="batching")
        batched = DesignFlow.sbox(key=0x9, trace_count=100, seed=5, config=base)
        loop = DesignFlow.sbox(
            key=0x9, trace_count=100, seed=5, batch_size=None, config=base
        )
        assert np.allclose(
            batched.traces().traces, loop.traces().traces, rtol=1e-12, atol=0.0
        )


# ------------------------------------------------------------------- scenarios


class TestScenarioFlows:
    def _round_flow(self, **overrides):
        campaign = dict(key=0x6B, scenario="present_round", trace_count=32)
        campaign.update(overrides)
        return DesignFlow(
            None,
            FlowConfig(
                name="round_flow",
                campaign=CampaignConfig(**campaign),
                scenario=ScenarioConfig(params={"sboxes": 2}),
            ),
        )

    def test_default_scenario_matches_legacy_sbox_campaign(self):
        # The "sbox" backend *is* the pre-scenario behaviour: same
        # expressions, same circuit, bit-identical traces.
        flow = DesignFlow.sbox(key=0xB, trace_count=40, seed=11)
        circuit = build_sbox_circuit(0xB, "fc", max_fanin=2)
        direct = acquire_circuit_traces(circuit, 0xB, 40, seed=11)
        assert np.array_equal(flow.traces().traces, direct.traces)
        assert flow.result("traces").details["scenario"] == "sbox"

    def test_round_flow_runs_end_to_end(self):
        flow = self._round_flow()
        report = flow.run()
        assert report["expressions"].details["scenario"] == "present_round"
        assert report["expressions"].details["width"] == 8
        assert len(flow.circuit().primary_inputs) == 8
        assert "analysis" in report.stages()

    def test_scenario_params_change_the_width(self):
        narrow = DesignFlow(
            None,
            FlowConfig(
                campaign=CampaignConfig(key=0x6, scenario="present_round", trace_count=8),
                scenario=ScenarioConfig(params={"sboxes": 1}),
            ),
        )
        assert len(narrow.circuit().primary_inputs) == 4

    def test_analysis_projects_onto_the_target_sbox(self):
        flow = self._round_flow()
        flow.config = flow.config.replace(
            analysis=AnalysisConfig(attacks=("dom",), target_sbox=1)
        )
        flow.result("analysis")
        details = flow.result("analysis").details
        assert details["attack_point"] == "r1_sbox1/bit0"

    def test_target_sbox_outside_slice_rejected(self):
        flow = self._round_flow()
        flow.config = flow.config.replace(
            analysis=AnalysisConfig(attacks=("dom",), target_sbox=5)
        )
        with pytest.raises(FlowError, match="target_sbox 5"):
            flow.analysis()

    def test_key_bound_follows_the_scenario(self):
        wide_key = DesignFlow(
            None,
            FlowConfig(
                campaign=CampaignConfig(
                    key=0x100, scenario="present_round", trace_count=8
                ),
                scenario=ScenarioConfig(params={"sboxes": 1}),
            ),
        )
        with pytest.raises(FlowError, match="does not fit"):
            wide_key.expressions()

    def test_distance_model_requires_valid_round(self):
        flow = self._round_flow(source="model", model_leakage="distance")
        flow.config = flow.config.replace(
            analysis=AnalysisConfig(attacks=("dom",), target_round=3)
        )
        with pytest.raises(FlowError, match="target round 3"):
            flow.traces()

    def test_unknown_scenario_is_a_flow_error(self):
        flow = DesignFlow(
            None,
            FlowConfig(campaign=CampaignConfig(scenario="grain", trace_count=8)),
        )
        with pytest.raises(FlowError, match="unknown scenario"):
            flow.expressions()

    def test_scenario_config_validates_param_names(self):
        with pytest.raises(ConfigError, match="non-empty strings"):
            ScenarioConfig(params={"": 1})
