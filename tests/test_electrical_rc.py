"""Unit tests for the switched-resistor transient engine."""

import math

import numpy as np
import pytest

from repro.electrical import SwitchedRCCircuit, generic_180nm


@pytest.fixture
def technology():
    return generic_180nm()


class TestRCDischarge:
    def test_single_rc_discharge_matches_analytic_solution(self, technology):
        """A charged capacitor through a fixed resistor follows exp(-t/RC)."""
        resistance, capacitance = 10e3, 10e-15
        circuit = SwitchedRCCircuit(technology)
        circuit.add_node("a", capacitance, initial=technology.vdd)
        circuit.add_supply("GND", 0.0)
        circuit.add_resistor("R1", "a", "GND", resistance)
        tau = resistance * capacitance
        waveforms = circuit.simulate(5 * tau, time_step=tau / 200)
        trace = waveforms["a"]
        for fraction in (0.5, 1.0, 2.0, 3.0):
            expected = technology.vdd * math.exp(-fraction)
            assert trace.at(fraction * tau) == pytest.approx(expected, rel=0.05)

    def test_charge_conservation_from_supply(self, technology):
        """Charging a capacitor from VDD draws exactly C*VDD from the supply."""
        capacitance = 20e-15
        circuit = SwitchedRCCircuit(technology)
        circuit.add_node("a", capacitance, initial=0.0)
        circuit.add_supply("VDD", technology.vdd)
        circuit.add_resistor("R1", "VDD", "a", 5e3)
        waveforms = circuit.simulate(50e-9, time_step=10e-12)
        delivered = waveforms.supply_charge("i_VDD")
        assert delivered == pytest.approx(capacitance * technology.vdd, rel=0.02)

    def test_isolated_node_holds_its_voltage(self, technology):
        circuit = SwitchedRCCircuit(technology)
        circuit.add_node("float", 1e-15, initial=1.0)
        circuit.add_supply("GND", 0.0)
        circuit.add_node("other", 1e-15, initial=0.0)
        circuit.add_resistor("R1", "other", "GND", 1e4)
        waveforms = circuit.simulate(10e-9, time_step=20e-12)
        assert waveforms["float"].values[-1] == pytest.approx(1.0, abs=1e-3)


class TestSwitchBehaviour:
    def test_nmos_switch_requires_gate_above_threshold(self, technology):
        circuit = SwitchedRCCircuit(technology)
        circuit.add_node("a", 10e-15, initial=technology.vdd)
        circuit.add_supply("GND", 0.0)
        # Gate waveform: low for the first half, high for the second half.
        def gate(t):
            return 0.0 if t < 5e-9 else technology.vdd
        circuit.add_switch("MN", "a", "GND", 5e3, kind="nmos", gate=gate)
        waveforms = circuit.simulate(10e-9, time_step=10e-12)
        midpoint = waveforms["a"].at(4.9e-9)
        end = waveforms["a"].values[-1]
        assert midpoint == pytest.approx(technology.vdd, abs=0.05)
        assert end < 0.05

    def test_pmos_switch_conducts_when_gate_low(self, technology):
        circuit = SwitchedRCCircuit(technology)
        circuit.add_node("a", 10e-15, initial=0.0)
        circuit.add_supply("VDD", technology.vdd)
        def gate(t):
            return technology.vdd if t < 5e-9 else 0.0
        circuit.add_switch("MP", "VDD", "a", 10e3, kind="pmos", gate=gate)
        waveforms = circuit.simulate(10e-9, time_step=10e-12)
        assert waveforms["a"].at(4.9e-9) < 0.05
        assert waveforms["a"].values[-1] > technology.vdd - 0.05

    def test_voltage_controlled_gate_from_another_node(self, technology):
        # An NMOS whose gate is another circuit node switches on once that
        # node is charged above the threshold.
        circuit = SwitchedRCCircuit(technology)
        circuit.add_node("gate_node", 5e-15, initial=0.0)
        circuit.add_node("victim", 5e-15, initial=technology.vdd)
        circuit.add_supply("VDD", technology.vdd)
        circuit.add_supply("GND", 0.0)
        circuit.add_resistor("Rg", "VDD", "gate_node", 20e3)
        circuit.add_switch("MN", "victim", "GND", 5e3, kind="nmos", gate="gate_node")
        waveforms = circuit.simulate(20e-9, time_step=10e-12)
        assert waveforms["victim"].values[-1] < 0.1

    def test_unknown_kind_rejected(self, technology):
        circuit = SwitchedRCCircuit(technology)
        circuit.add_node("a", 1e-15)
        circuit.add_supply("GND", 0.0)
        with pytest.raises(ValueError):
            circuit.add_switch("M", "a", "GND", 1e3, kind="njfet", gate=lambda t: 0.0)

    def test_switch_requires_gate(self, technology):
        circuit = SwitchedRCCircuit(technology)
        circuit.add_node("a", 1e-15)
        circuit.add_supply("GND", 0.0)
        with pytest.raises(ValueError):
            circuit.add_switch("M", "a", "GND", 1e3, kind="nmos")

    def test_unknown_node_rejected(self, technology):
        circuit = SwitchedRCCircuit(technology)
        circuit.add_node("a", 1e-15)
        with pytest.raises(KeyError):
            circuit.add_resistor("R", "a", "missing", 1e3)

    def test_non_positive_capacitance_rejected(self, technology):
        circuit = SwitchedRCCircuit(technology)
        circuit.add_node("a", 0.0)
        circuit.add_supply("GND", 0.0)
        circuit.add_resistor("R", "a", "GND", 1e3)
        with pytest.raises(ValueError):
            circuit.simulate(1e-9)
