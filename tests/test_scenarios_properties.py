"""Property tests of the scenario algebra, plus engine equivalence.

Hypothesis pins the structural invariants -- the sliced pLayer is a
bijection equal to its tabulated inverse, keyed single-round scenarios
commute with a plaintext key XOR, encryption round trips through the
state tables -- and the engine tests extend PR 3's serial-vs-parallel
equality to a ``present_round`` slice: traces, DPA scores and TVLA
statistics must be bit-identical between the serial executor and a
4-worker process pool.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.flow import (
    AnalysisConfig,
    AssessmentConfig,
    CampaignConfig,
    DesignFlow,
    ExecutionConfig,
    FlowConfig,
    ScenarioConfig,
)
from repro.power.crypto import PRESENT_SBOX, hamming_weight
from repro.scenarios import (
    SUPPORTED_SBOX_COUNTS,
    PresentRoundScenario,
    PresentRoundsScenario,
    apply_bit_permutation,
    make_scenario,
    player_inverse,
    player_permutation,
    popcount,
    present_round_keys,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

sbox_counts = st.sampled_from(SUPPORTED_SBOX_COUNTS)


# ------------------------------------------------------------------- pLayer


class TestPlayer:
    @given(sbox_counts)
    def test_permutation_is_a_bijection(self, sboxes):
        permutation = player_permutation(sboxes)
        assert sorted(permutation) == list(range(4 * sboxes))

    @given(sbox_counts, st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_inverse_undoes_the_permutation(self, sboxes, value):
        value &= (1 << (4 * sboxes)) - 1
        forward = apply_bit_permutation(value, player_permutation(sboxes))
        assert apply_bit_permutation(forward, player_inverse(sboxes)) == value

    @given(sbox_counts, st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_permutation_preserves_hamming_weight(self, sboxes, value):
        value &= (1 << (4 * sboxes)) - 1
        permuted = apply_bit_permutation(value, player_permutation(sboxes))
        assert hamming_weight(permuted) == hamming_weight(value)

    def test_full_width_matches_published_p_table(self):
        permutation = player_permutation(16)
        assert all(
            permutation[i] == (63 if i == 63 else (16 * i) % 63) for i in range(64)
        )


# ------------------------------------------------------- keyed commutation


@lru_cache(maxsize=None)
def _round_expressions(key, sboxes):
    return PresentRoundScenario(key, PRESENT_SBOX, sboxes=sboxes).expressions()


class TestKeyCommutation:
    """Single-round keying is a plaintext XOR: ``E_k(p) == E_0(p ^ k)``."""

    @given(
        st.sampled_from((1, 2)),
        st.integers(min_value=0, max_value=(1 << 8) - 1),
        st.integers(min_value=0, max_value=(1 << 8) - 1),
    )
    def test_encrypt_commutes_with_key_xor(self, sboxes, key, plaintext):
        mask = (1 << (4 * sboxes)) - 1
        key &= mask
        plaintext &= mask
        keyed = PresentRoundScenario(key, PRESENT_SBOX, sboxes=sboxes)
        zero = PresentRoundScenario(0, PRESENT_SBOX, sboxes=sboxes)
        assert keyed.encrypt(plaintext) == zero.encrypt(plaintext ^ key)

    @given(
        st.sampled_from((1, 2)),
        st.integers(min_value=0, max_value=(1 << 8) - 1),
        st.integers(min_value=0, max_value=(1 << 8) - 1),
    )
    @settings(deadline=None)
    def test_expressions_commute_with_key_xor(self, sboxes, key, plaintext):
        width = 4 * sboxes
        mask = (1 << width) - 1
        key &= mask
        plaintext &= mask
        keyed = _round_expressions(key, sboxes)
        zero = _round_expressions(0, sboxes)

        def evaluate(expressions, value):
            assignment = {f"p{i}": bool((value >> i) & 1) for i in range(width)}
            return sum(
                int(expressions[f"y{bit}"].evaluate(assignment)) << bit
                for bit in range(width)
            )

        assert evaluate(keyed, plaintext) == evaluate(zero, plaintext ^ key)


# --------------------------------------------------------- state machinery


class TestStateTables:
    @given(
        st.integers(min_value=0, max_value=(1 << 8) - 1),
        st.integers(min_value=1, max_value=4),
    )
    @settings(deadline=None)
    def test_state_tables_match_round_states(self, key, rounds):
        scenario = PresentRoundsScenario(key & 0xFF, PRESENT_SBOX, sboxes=2, rounds=rounds)
        tables = [scenario.state_table(r) for r in range(rounds + 1)]
        for plaintext in (0, 1, 0x5A, 0xFF):
            states = scenario.round_states(plaintext)
            assert [int(table[plaintext]) for table in tables] == list(states)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_popcount_matches_scalar_hamming_weight(self, value):
        assert int(popcount(np.array([value]))[0]) == hamming_weight(value)

    def test_round_keys_fold_the_round_counter(self):
        keys = present_round_keys(0x0, rounds=4, width=8)
        assert keys[0] == 0x0
        # A zero master key still produces distinct round keys, because
        # the counter lands in the schedule.
        assert len(set(keys)) == len(keys)

    def test_distance_leakage_is_popcount_of_register_update(self):
        scenario = make_scenario(
            "present_rounds", key=0x3, params={"sboxes": 1, "rounds": 2}
        )
        table = scenario.leakage_table("distance", target_round=2)
        for plaintext in range(16):
            states = scenario.round_states(plaintext)
            assert table[plaintext] == hamming_weight(states[1] ^ states[2])


# --------------------------------------------------- engine equivalence


def _round_flow(execution, **overrides):
    campaign = dict(
        key=0x6B,
        scenario="present_round",
        trace_count=96,
        noise_std=0.01,
    )
    campaign.update(overrides)
    return DesignFlow(
        None,
        FlowConfig(
            name="present_round_engine",
            campaign=CampaignConfig(**campaign),
            scenario=ScenarioConfig(params={"sboxes": 2}),
            analysis=AnalysisConfig(target_sbox=1, target_bit=2),
            assessment=AssessmentConfig(
                enabled=True, traces_per_class=48, chunk_size=32
            ),
            execution=execution,
        ),
    )


class TestScenarioEngineEquality:
    """PR 3's serial-vs-parallel contract, on a present_round slice."""

    def test_four_workers_bit_identical_to_serial(self):
        serial = _round_flow(ExecutionConfig(shard_size=32))
        parallel = _round_flow(ExecutionConfig(workers=4, shard_size=32))
        st_, pt = serial.traces(), parallel.traces()
        assert np.array_equal(st_.plaintexts, pt.plaintexts)
        assert np.array_equal(st_.traces, pt.traces)
        assert parallel.result("traces").details["executor"] == "process"
        assert parallel.result("traces").details["scenario"] == "present_round"

    def test_attacks_and_tvla_match_across_executors(self):
        serial = _round_flow(ExecutionConfig(shard_size=32))
        parallel = _round_flow(ExecutionConfig(workers=4, shard_size=32))
        serial.run()
        parallel.run()
        for attack in ("dom", "cpa"):
            assert (
                serial.analysis()[attack].scores == parallel.analysis()[attack].scores
            )
        assert (
            serial.assessment()["ttest"].to_dict()
            == parallel.assessment()["ttest"].to_dict()
        )

    def test_model_round_campaign_shards_identically(self):
        serial = _round_flow(
            ExecutionConfig(shard_size=32), source="model", model_leakage="distance"
        )
        parallel = _round_flow(
            ExecutionConfig(workers=4, shard_size=32),
            source="model",
            model_leakage="distance",
        )
        assert np.array_equal(serial.traces().traces, parallel.traces().traces)

    def test_projected_attack_recovers_subkey_from_bit_model(self):
        flow = _round_flow(
            ExecutionConfig(),
            source="model",
            model_leakage="bit",
            trace_count=2000,
            noise_std=0.2,
        )
        flow.result("analysis")
        outcome = flow.analysis()["dom"]
        # Subkey of S-box 1 under key 0x6B is the 0x6 nibble.
        assert outcome.succeeded and outcome.best_guess == 0x6
        assert flow.result("analysis").details["attack_point"] == "r1_sbox1/bit2"
