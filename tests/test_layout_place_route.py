"""Placement and differential routing: legality, determinism, matching."""

from __future__ import annotations

import pytest

from repro.boolexpr import parse
from repro.electrical.technology import generic_130nm, generic_180nm
from repro.layout import (
    LayoutError,
    RoutingResult,
    extract_net_parasitics,
    known_routers,
    layout_circuit,
    net_terminals,
    place_circuit,
    route_circuit,
)
from repro.power.trace import build_sbox_circuit
from repro.sabl.circuit import map_expressions

from hypothesis import given, settings, strategies as st


def small_circuit():
    """A handful of gates with shared fan-in and real outputs."""
    return map_expressions(
        {
            "F": parse("(A & B) | (C & ~A)"),
            "G": parse("(A | C) & (B | ~C)"),
        },
        primary_inputs=["A", "B", "C"],
        name="small",
    )


@pytest.fixture(scope="module")
def sbox_circuit():
    return build_sbox_circuit(0xB)


class TestNetTerminals:
    def test_every_net_has_a_driver_and_known_sinks(self):
        circuit = small_circuit()
        terminals = net_terminals(circuit)
        assert set(terminals) == set(circuit.nets())
        gate_names = {gate.name for gate in circuit.gates}
        for terminal in terminals.values():
            if terminal.is_input:
                assert terminal.driver in circuit.primary_inputs
            else:
                assert terminal.driver in gate_names
            assert set(terminal.sinks) <= gate_names

    def test_outputs_are_exposed_on_their_nets(self):
        circuit = small_circuit()
        terminals = net_terminals(circuit)
        for name, net in circuit.outputs.items():
            assert name in terminals[net].output_names


class TestPlacement:
    def test_placement_is_legal(self):
        circuit = small_circuit()
        placement = place_circuit(circuit, seed=3)
        rows, cols = placement.grid
        sites = list(placement.gates.values())
        assert len(sites) == circuit.gate_count()
        assert len(set(sites)) == len(sites)  # one gate per site
        assert all(0 <= r < rows and 0 <= c < cols for r, c in sites)
        # pads hug the west/east edges
        assert all(c == 0 for _, c in placement.input_pads.values())
        assert all(c == cols - 1 for _, c in placement.output_pads.values())

    def test_deterministic_for_a_fixed_seed(self, sbox_circuit):
        first = place_circuit(sbox_circuit, seed=11, anneal_moves=300)
        second = place_circuit(sbox_circuit, seed=11, anneal_moves=300)
        assert first.gates == second.gates
        assert first.hpwl == second.hpwl

    def test_annealing_does_not_worsen_the_greedy_placement(self, sbox_circuit):
        placement = place_circuit(sbox_circuit, seed=11, anneal_moves=600)
        assert placement.hpwl <= placement.initial_hpwl

    def test_explicit_grid_is_honoured_and_validated(self):
        circuit = small_circuit()
        placement = place_circuit(circuit, grid=(4, 6), seed=0)
        assert placement.grid == (4, 6)
        with pytest.raises(LayoutError):
            place_circuit(circuit, grid=(1, 2), seed=0)  # too few sites

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_any_seed_yields_a_legal_placement(self, seed):
        circuit = small_circuit()
        placement = place_circuit(circuit, seed=seed, anneal_moves=120)
        sites = list(placement.gates.values())
        assert len(set(sites)) == len(sites)
        rows, cols = placement.grid
        assert all(0 <= r < rows and 0 <= c < cols for r, c in sites)


def _tree_is_connected(cells, pins):
    cells = set(cells)
    assert set(pins) <= cells, "a pin site is missing from the routed tree"
    seen = {next(iter(cells))}
    frontier = [next(iter(seen))]
    while frontier:
        row, col = frontier.pop()
        for neighbour in ((row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1)):
            if neighbour in cells and neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen == cells


class TestRouting:
    def test_builtin_modes_are_registered(self):
        assert {"fat", "diffpair", "unbalanced"} <= set(known_routers())

    @pytest.mark.parametrize("router", ["fat", "diffpair", "unbalanced"])
    def test_every_net_is_routed_and_connected(self, router):
        circuit = small_circuit()
        placement = place_circuit(circuit, seed=5)
        routing = route_circuit(circuit, placement, router=router)
        assert isinstance(routing, RoutingResult)
        terminals = net_terminals(circuit)
        assert set(routing.nets) == set(circuit.nets())
        for net, routed in routing.nets.items():
            terminal = terminals[net]
            pins = [
                placement.input_pads[terminal.driver]
                if terminal.is_input
                else placement.gates[terminal.driver]
            ]
            pins.extend(placement.gates[sink] for sink in terminal.sinks)
            pins.extend(placement.output_pads[o] for o in terminal.output_names)
            assert _tree_is_connected(routed.true_cells, pins)
            assert _tree_is_connected(routed.false_cells, pins)

    def test_fat_pairs_have_exactly_equal_rails(self, sbox_circuit):
        placement = place_circuit(sbox_circuit, seed=7, anneal_moves=300)
        routing = route_circuit(sbox_circuit, placement, router="fat")
        for routed in routing.nets.values():
            assert routed.true_length == routed.false_length
            assert routed.true_cells == routed.false_cells
        assert routing.max_mismatch == 0

    def test_unbalanced_sbox_routing_has_nonzero_mismatch(self, sbox_circuit):
        # The acceptance pin: independent rails through real congestion
        # cannot stay matched on the paper's S-box circuit.
        layout = layout_circuit(sbox_circuit, generic_180nm(), router="unbalanced", seed=7)
        assert layout.routing.max_mismatch > 0
        loads = layout.parasitics.rail_loads()
        assert any(abs(ct - cf) > 0 for ct, cf in loads.values())

    def test_routing_is_deterministic(self, sbox_circuit):
        placement = place_circuit(sbox_circuit, seed=9, anneal_moves=200)
        first = route_circuit(sbox_circuit, placement, router="unbalanced")
        second = route_circuit(sbox_circuit, placement, router="unbalanced")
        assert {n: (r.true_length, r.false_length) for n, r in first.nets.items()} == {
            n: (r.true_length, r.false_length) for n, r in second.nets.items()
        }

    def test_unknown_router_lists_available(self):
        circuit = small_circuit()
        placement = place_circuit(circuit, seed=0)
        with pytest.raises(KeyError, match="unknown router"):
            route_circuit(circuit, placement, router="steiner")

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_fat_matching_holds_for_every_placement_seed(self, seed):
        circuit = small_circuit()
        layout = layout_circuit(
            circuit, generic_180nm(), router="fat", seed=seed, anneal_moves=120
        )
        assert layout.routing.max_mismatch == 0
        assert layout.parasitics.max_mismatch() == 0.0


class TestParasitics:
    def test_lengths_scale_with_the_technology_constants(self, sbox_circuit):
        placement = place_circuit(sbox_circuit, seed=7, anneal_moves=200)
        routing = route_circuit(sbox_circuit, placement, router="fat")
        table_180 = extract_net_parasitics(routing, generic_180nm())
        table_130 = extract_net_parasitics(routing, generic_130nm())
        for net, routed in routing.nets.items():
            tech = generic_180nm()
            expected = routed.true_length * tech.route_pitch_um * tech.c_wire_per_um
            assert table_180.pair_capacitance[net][0] == pytest.approx(expected)
        # same geometry, different constants: strictly smaller caps at 130nm
        assert table_130.total_wirelength_um() < table_180.total_wirelength_um()

    def test_annotatable_excludes_pad_driven_inputs(self, sbox_circuit):
        layout = layout_circuit(sbox_circuit, generic_180nm(), router="fat", seed=7)
        loads = layout.parasitics.rail_loads()
        assert set(loads) == {gate.output_net for gate in sbox_circuit.gates}
        for primary in sbox_circuit.primary_inputs:
            assert primary not in loads
            assert primary in layout.parasitics.pair_capacitance

    def test_to_dict_round_trips_to_json(self, sbox_circuit):
        import json

        layout = layout_circuit(sbox_circuit, generic_180nm(), router="diffpair", seed=7)
        record = json.loads(json.dumps(layout.parasitics.to_dict()))
        assert record["router"] == "diffpair"
        assert record["pairs"] == len(sbox_circuit.nets())
        assert record["total_wirelength_um"] > 0
