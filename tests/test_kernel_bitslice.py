"""The compiled bit-sliced simulator backend (:mod:`repro.kernel`).

The kernel's contract is *bit-identity*: whatever circuit, gate style,
width or back-annotated parasitics, the packed-uint64 backend must
return exactly the float64 energy stream of the event-table reference
model.  This suite pins that contract -- deterministically on
representative circuits and scenarios, property-based on random mapped
circuits, and end-to-end through the sharded engine and the artifact
store's simulator equivalence class.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow import CampaignConfig, DesignFlow, ExecutionConfig, FlowConfig
from repro.flow.config import ConfigError
from repro.flow.registry import DuplicateBackendError, UnknownBackendError
from repro.kernel import (
    SIMULATORS,
    BitslicedCircuitEnergyModel,
    CompiledProgram,
    WORD_BITS,
    compile_circuit,
    get_simulator,
    pack_bitplanes,
    register_simulator,
    unpack_bitplanes,
    word_count,
)
from repro.power.trace import acquire_circuit_traces, build_sbox_circuit
from repro.sabl.circuit import map_expressions
from repro.sabl.simulator import BatchedCircuitEnergyModel

from strategies import HAVE_HYPOTHESIS, expression_strategy


def _random_matrix(rng, cycles, width):
    return rng.integers(0, 2, size=(cycles, width)).astype(bool)


def _event_model(program: CompiledProgram) -> BatchedCircuitEnergyModel:
    return get_simulator("event")(program)


# ------------------------------------------------------------------ packing


class TestPacking:
    def test_word_count(self):
        assert word_count(1) == 1
        assert word_count(64) == 1
        assert word_count(65) == 2
        assert WORD_BITS == 64

    @pytest.mark.parametrize("cycles", [1, 7, 64, 65, 200])
    @pytest.mark.parametrize("nets", [1, 3, 11])
    def test_roundtrip(self, cycles, nets):
        rng = np.random.default_rng(cycles * 31 + nets)
        matrix = rng.integers(0, 2, size=(cycles, nets)).astype(bool)
        planes = pack_bitplanes(matrix)
        assert planes.dtype == np.uint64
        assert planes.shape == (nets, word_count(cycles))
        assert np.array_equal(unpack_bitplanes(planes, cycles), matrix.T)

    def test_padding_bits_are_zero(self):
        matrix = np.ones((5, 2), dtype=bool)
        planes = pack_bitplanes(matrix)
        # Bits 5..63 of the single word must be zero padding.
        assert planes[0, 0] == np.uint64(0b11111)


# ----------------------------------------------------------------- registry


class TestRegistry:
    def test_builtins_are_registered(self):
        assert "event" in SIMULATORS
        assert "bitslice" in SIMULATORS

    def test_unknown_simulator_lists_available(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_simulator("verilator")
        message = str(excinfo.value)
        assert "verilator" in message and "bitslice" in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DuplicateBackendError):
            register_simulator("event", lambda program: None)

    def test_custom_backend_round_trip(self):
        sentinel = object()
        register_simulator("custom-test", lambda program: sentinel)
        try:
            assert get_simulator("custom-test")(None) is sentinel
        finally:
            SIMULATORS.unregister("custom-test")

    def test_factories_share_the_compiled_tables(self):
        circuit = build_sbox_circuit(0xB)
        program = compile_circuit(circuit)
        model = _event_model(program)
        assert model._tables[0] is program.tables[0]


# ------------------------------------------------------------- compilation


class TestCompiledProgram:
    def test_evaluate_outputs_matches_interpreted_nets(self):
        circuit = build_sbox_circuit(0x7)
        program = compile_circuit(circuit)
        assert program.gate_count() == len(circuit.gates)
        rng = np.random.default_rng(11)
        matrix = _random_matrix(rng, 150, 4)
        outputs = program.evaluate_outputs(matrix)
        for row in range(matrix.shape[0]):
            inputs = dict(zip(circuit.primary_inputs, matrix[row]))
            nets = circuit.evaluate_nets(inputs)
            for name, net in circuit.outputs.items():
                assert outputs[name][row] == nets[net], (name, row)

    def test_evaluate_outputs_validates_width(self):
        program = compile_circuit(build_sbox_circuit(0x7))
        with pytest.raises(ValueError):
            program.evaluate_outputs(np.zeros((4, 3), dtype=bool))

    def test_plan_is_cached(self):
        program = compile_circuit(build_sbox_circuit(0x7))
        assert program.plan() is program.plan()


# ------------------------------------------------------------- bit-identity


def _assert_bit_identical(circuit, *, net_loads=None, batches=((64, 200), (33, 50))):
    """Event and bitslice streams must agree bit-for-bit, including the
    stateful memory effect across several ``energies`` calls with odd
    batch sizes."""
    program = compile_circuit(circuit, net_loads=net_loads)
    event = _event_model(program)
    bitslice = BitslicedCircuitEnergyModel(program)
    rng = np.random.default_rng(2005)
    width = len(circuit.primary_inputs)
    for batch_size, cycles in batches:
        matrix = _random_matrix(rng, cycles, width)
        expected = event.energies(matrix, batch_size=batch_size)
        actual = bitslice.energies(matrix, batch_size=batch_size)
        assert np.array_equal(expected, actual)


class TestBitIdentity:
    @pytest.mark.parametrize("gate_style", ["sabl", "cvsl"])
    @pytest.mark.parametrize("network_style", ["fc", "genuine"])
    def test_sbox_circuit(self, gate_style, network_style):
        circuit = build_sbox_circuit(0xB, network_style=network_style)
        program = compile_circuit(circuit, gate_style=gate_style)
        event = _event_model(program)
        bitslice = BitslicedCircuitEnergyModel(program)
        rng = np.random.default_rng(7)
        matrix = _random_matrix(rng, 300, 4)
        assert np.array_equal(
            event.energies(matrix, batch_size=77),
            bitslice.energies(matrix, batch_size=77),
        )

    def test_routed_net_loads(self):
        circuit = build_sbox_circuit(0xB)
        rng = np.random.default_rng(13)
        nets = [gate.output_net for gate in circuit.gates]
        loads = {
            net: (float(rng.uniform(1e-16, 5e-15)), float(rng.uniform(1e-16, 5e-15)))
            for net in nets[:: 2]
        }
        _assert_bit_identical(circuit, net_loads=loads)

    def test_reset_replays_the_memory_effect(self):
        circuit = build_sbox_circuit(0x3, network_style="genuine")
        program = compile_circuit(circuit)
        model = BitslicedCircuitEnergyModel(program)
        rng = np.random.default_rng(5)
        matrix = _random_matrix(rng, 120, 4)
        first = model.energies(matrix, batch_size=48)
        model.reset()
        assert np.array_equal(first, model.energies(matrix, batch_size=48))

    def test_acquire_circuit_traces_dispatches_by_name(self):
        circuit = build_sbox_circuit(0xB)
        kwargs = dict(key=0xB, trace_count=400, noise_std=0.01)
        event = acquire_circuit_traces(circuit, simulator="event", **kwargs)
        bitslice = acquire_circuit_traces(circuit, simulator="bitslice", **kwargs)
        assert np.array_equal(event.traces, bitslice.traces)
        assert np.array_equal(event.plaintexts, bitslice.plaintexts)

    def test_foreign_program_is_rejected(self):
        circuit = build_sbox_circuit(0xB)
        other = compile_circuit(build_sbox_circuit(0x3))
        with pytest.raises(ValueError):
            acquire_circuit_traces(
                circuit, key=0xB, trace_count=10, program=other
            )

    def test_per_trace_loop_has_no_backends(self):
        circuit = build_sbox_circuit(0xB)
        with pytest.raises(ValueError):
            acquire_circuit_traces(
                circuit, key=0xB, trace_count=10, batch_size=None,
                simulator="bitslice",
            )


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestBitIdentityProperties:
    def test_random_mapped_circuits_are_bit_identical(self):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=25, deadline=None)
        @given(
            expressions=st.lists(
                expression_strategy(max_leaves=6), min_size=1, max_size=3
            ),
            gate_style=st.sampled_from(["sabl", "cvsl"]),
            network_style=st.sampled_from(["fc", "genuine"]),
            load_seed=st.integers(0, 2**16),
            data=st.data(),
        )
        def check(expressions, gate_style, network_style, load_seed, data):
            circuit = map_expressions(
                {f"F{i}": expr for i, expr in enumerate(expressions)},
                primary_inputs=["A", "B", "C", "D"],
                network_style=network_style,
                name="prop",
            )
            rng = np.random.default_rng(load_seed)
            net_loads = None
            if data.draw(st.booleans()):
                net_loads = {
                    gate.output_net: (
                        float(rng.uniform(1e-16, 5e-15)),
                        float(rng.uniform(1e-16, 5e-15)),
                    )
                    for gate in circuit.gates
                    if rng.random() < 0.5
                }
            program = compile_circuit(
                circuit, gate_style=gate_style, net_loads=net_loads
            )
            event = _event_model(program)
            bitslice = BitslicedCircuitEnergyModel(program)
            cycles = data.draw(st.integers(1, 150))
            batch_size = data.draw(st.integers(1, 96))
            matrix = _random_matrix(rng, cycles, 4)
            assert np.array_equal(
                event.energies(matrix, batch_size=batch_size),
                bitslice.energies(matrix, batch_size=batch_size),
            )

        check()


# ------------------------------------------------------------ flow + engine


def _sbox_flow(simulator, execution=None, **campaign_overrides):
    config = FlowConfig(
        name="kernel_test",
        campaign=CampaignConfig(
            key=0xB, trace_count=400, simulator=simulator, **campaign_overrides
        ),
    )
    if execution is not None:
        config = config.replace(execution=execution)
    return DesignFlow(None, config)


class TestFlowIntegration:
    def test_trace_stage_reports_the_simulator(self):
        flow = _sbox_flow("bitslice")
        assert flow.result("traces").details["simulator"] == "bitslice"

    def test_sharded_four_worker_run_matches_the_event_backend(self):
        event = _sbox_flow(
            "event", ExecutionConfig(workers=4, shard_size=100)
        ).traces()
        bitslice = _sbox_flow(
            "bitslice", ExecutionConfig(workers=4, shard_size=100)
        ).traces()
        assert np.array_equal(event.traces, bitslice.traces)
        assert np.array_equal(event.plaintexts, bitslice.plaintexts)

    def test_unknown_simulator_is_a_flow_error(self):
        from repro.flow.pipeline import FlowError

        flow = _sbox_flow("verilator")
        with pytest.raises(FlowError, match="verilator"):
            flow.traces()

    def test_assessment_stream_is_backend_independent(self):
        results = {}
        for simulator in ("event", "bitslice"):
            flow = _sbox_flow(simulator)
            flow.config = flow.config.replace(
                assessment=flow.config.assessment.replace(
                    enabled=True, traces_per_class=200
                )
            )
            results[simulator] = flow.result("assessment")
        assert (
            results["event"].details["ttest_max_abs_t"]
            == results["bitslice"].details["ttest_max_abs_t"]
        )

    def test_store_keys_ignore_the_simulator(self, tmp_path):
        from repro.engine.runner import trace_store_record
        from repro.engine.store import content_key

        keys = {
            simulator: content_key(trace_store_record(_sbox_flow(simulator)))
            for simulator in ("event", "bitslice")
        }
        assert keys["event"] == keys["bitslice"]

    def test_bitslice_run_hits_the_event_backends_store_entry(self, tmp_path):
        store = str(tmp_path / "store")
        first = _sbox_flow(
            "event", ExecutionConfig(store=store, shard_size=100)
        )
        assert first.result("traces").details["store"] == "miss"
        second = _sbox_flow(
            "bitslice", ExecutionConfig(store=store, shard_size=100)
        )
        assert second.result("traces").details["store"] == "hit"
        assert np.array_equal(first.traces().traces, second.traces().traces)


class TestConfigValidation:
    def test_simulator_must_be_non_empty(self):
        with pytest.raises(ConfigError):
            CampaignConfig(simulator="")

    def test_per_trace_loop_rejects_other_simulators(self):
        with pytest.raises(ConfigError, match="batch_size"):
            CampaignConfig(batch_size=None, simulator="bitslice")

    def test_per_trace_event_loop_still_allowed(self):
        assert CampaignConfig(batch_size=None).simulator == "event"

    def test_round_trips_through_dict(self):
        config = CampaignConfig(simulator="bitslice")
        assert CampaignConfig.from_dict(config.to_dict()).simulator == "bitslice"
