"""Unit tests for the Section 5 enhancement (pass-gate insertion)."""

import pytest

from repro.boolexpr import parse
from repro.core import (
    check_constant_evaluation_depth,
    check_no_early_propagation,
    enhance_fc_dpdn,
    enhance_fc_dpdn_with_insertions,
    synthesize_fc_dpdn,
    verify_gate,
)
from repro.network import evaluation_depths, is_fully_connected, path_variables, structural_paths


class TestAndNandFig6:
    def test_two_dummy_devices_added(self, and2_fc):
        result = enhance_fc_dpdn_with_insertions(and2_fc)
        assert result.dummy_device_count == 2
        assert result.dpdn.device_count() == and2_fc.device_count() + 2

    def test_pass_gate_is_on_the_missing_input(self, and2_fc):
        result = enhance_fc_dpdn_with_insertions(and2_fc)
        assert [insertion.variable for insertion in result.insertions] == ["A"]

    def test_constant_depth_of_two(self, and2, and2_fc):
        enhanced = enhance_fc_dpdn(and2_fc)
        depths = set(evaluation_depths(enhanced).values())
        assert depths == {2}

    def test_dummy_devices_are_marked(self, and2_fc):
        enhanced = enhance_fc_dpdn(and2_fc)
        roles = [t.role for t in enhanced.transistors]
        assert roles.count("dummy") == 2
        assert roles.count("logic") == 4

    def test_function_and_connectivity_preserved(self, and2, and2_fc):
        enhanced = enhance_fc_dpdn(and2_fc)
        report = verify_gate(
            enhanced, and2, require_constant_depth=True, require_no_early_propagation=True
        )
        assert report.passed, report.describe()


class TestEnhancementProperties:
    def test_every_discharge_path_sees_every_input(self, representative_function):
        name, function = representative_function
        enhanced = enhance_fc_dpdn(synthesize_fc_dpdn(function, name=name))
        variables = set(enhanced.variables())
        for output in (enhanced.x, enhanced.y):
            for path in structural_paths(enhanced, output, enhanced.z):
                gate_variables = {t.gate.variable for t in path}
                rails = {}
                for device in path:
                    rails.setdefault(device.gate.variable, set()).add(device.gate.positive)
                contradictory = any(len(p) > 1 for p in rails.values())
                if not contradictory:
                    assert path_variables(path) == variables, (name, output)

    def test_constant_depth_and_no_early_propagation(self, representative_function):
        name, function = representative_function
        enhanced = enhance_fc_dpdn(synthesize_fc_dpdn(function, name=name))
        assert check_constant_evaluation_depth(enhanced).passed, name
        assert check_no_early_propagation(enhanced).passed, name

    def test_enhancement_keeps_full_connectivity(self, representative_function):
        name, function = representative_function
        enhanced = enhance_fc_dpdn(synthesize_fc_dpdn(function, name=name))
        assert is_fully_connected(enhanced), name

    def test_unenhanced_fc_gate_shows_early_propagation(self, and2_fc):
        # The plain FC AND-NAND evaluates as soon as B arrives with B=0
        # (the ~B device alone discharges Y); the enhancement removes this.
        assert not check_no_early_propagation(and2_fc).passed

    def test_buffer_gate_needs_no_enhancement(self):
        fc = synthesize_fc_dpdn(parse("A"))
        result = enhance_fc_dpdn_with_insertions(fc)
        assert result.insertions == []

    def test_enhancement_is_idempotent_for_already_enhanced_networks(self, and2_fc):
        once = enhance_fc_dpdn(and2_fc)
        twice = enhance_fc_dpdn_with_insertions(once)
        assert twice.insertions == []

    def test_genuine_network_can_also_be_enhanced(self, and2_genuine, and2):
        # The algorithm only uses the path structure, so a genuine network
        # is accepted; it gains constant depth but stays non-FC.
        enhanced = enhance_fc_dpdn(and2_genuine)
        assert check_constant_evaluation_depth(enhanced).passed
        assert verify_gate(enhanced, and2, require_fully_connected=False).passed

    def test_insertion_records_are_descriptive(self, and2_fc):
        result = enhance_fc_dpdn_with_insertions(and2_fc)
        text = result.describe()
        assert "pass-gate" in text and "dummy" in text
