"""Unit tests for series-parallel tree extraction."""

import pytest

from repro.boolexpr import complement, equivalent, parse
from repro.core import synthesize_fc_dpdn
from repro.network import (
    NotSeriesParallelError,
    SPLeaf,
    SPParallel,
    SPSeries,
    branch_devices,
    branch_trees,
    build_branch,
    build_genuine_dpdn,
    extract_sp_tree,
)


def extract_branch_tree(expression_text):
    branch = build_branch(parse(expression_text), top="TOP", bottom="BOT")
    return extract_sp_tree(list(branch.transistors), "TOP", "BOT")


class TestExtraction:
    def test_single_device_is_a_leaf(self):
        tree = extract_branch_tree("A")
        assert isinstance(tree, SPLeaf)
        assert tree.top == "TOP" and tree.bottom == "BOT"

    def test_series_stack(self):
        tree = extract_branch_tree("A & B & C")
        assert isinstance(tree, SPSeries)
        assert len(tree.children) == 3
        assert len(tree.joints) == 2
        assert all(isinstance(child, SPLeaf) for child in tree.children)

    def test_parallel_network(self):
        tree = extract_branch_tree("A | B | C")
        assert isinstance(tree, SPParallel)
        assert len(tree.children) == 3

    def test_nested_structure(self):
        tree = extract_branch_tree("(A | B) & (C | D)")
        assert isinstance(tree, SPSeries)
        assert all(isinstance(child, SPParallel) for child in tree.children)

    def test_tree_function_matches_expression(self):
        for text in ("A & B", "A | (B & C)", "(A | B) & (C | D)", "A & (B | (C & D))"):
            tree = extract_branch_tree(text)
            assert equivalent(tree.function(), parse(text)), text

    def test_device_partition(self):
        tree = extract_branch_tree("(A | B) & C")
        assert len(tree.devices()) == 3
        assert len(tree.device_names()) == 3

    def test_reversed_swaps_terminals_and_preserves_function(self):
        tree = extract_branch_tree("(A | B) & (C | D)")
        flipped = tree.reversed()
        assert flipped.top == tree.bottom and flipped.bottom == tree.top
        assert equivalent(flipped.function(), tree.function())

    def test_empty_branch_rejected(self):
        with pytest.raises(NotSeriesParallelError):
            extract_sp_tree([], "TOP", "BOT")

    def test_non_series_parallel_branch_rejected(self):
        # A Wheatstone-bridge graph is the canonical non-series-parallel
        # two-terminal network and must be rejected.
        from repro.network import DifferentialPullDownNetwork, Literal

        bridge = DifferentialPullDownNetwork("bridge", x="TOP", y="__y__", z="BOT")
        bridge.add_transistor(Literal("A", True), "TOP", "n1")
        bridge.add_transistor(Literal("B", True), "TOP", "n2")
        bridge.add_transistor(Literal("C", True), "n1", "n2")
        bridge.add_transistor(Literal("D", True), "n1", "BOT")
        bridge.add_transistor(Literal("E", True), "n2", "BOT")
        with pytest.raises(NotSeriesParallelError):
            extract_sp_tree(list(bridge.transistors), "TOP", "BOT")

    def test_fc_network_extracted_as_whole_realises_the_function(self):
        # Taken as a single two-terminal graph between X and Z, the fully
        # connected AND2 network still reduces and realises A & B -- the
        # sharing is what makes the per-branch split (branch_devices) fail.
        fc = synthesize_fc_dpdn(parse("A & B"))
        tree = extract_sp_tree(list(fc.transistors), fc.x, fc.z)
        assert equivalent(tree.function(), parse("A & B"))


class TestBranchSplitting:
    def test_branches_of_genuine_network_partition_devices(self):
        dpdn = build_genuine_dpdn(parse("(A | B) & C"))
        x_branch, y_branch = branch_devices(dpdn)
        assert len(x_branch) + len(y_branch) == dpdn.device_count()
        assert {d.name for d in x_branch} & {d.name for d in y_branch} == set()

    def test_branch_trees_are_dual_functions(self):
        dpdn = build_genuine_dpdn(parse("(A & B) | (C & D)"))
        x_tree, y_tree = branch_trees(dpdn)
        assert equivalent(complement(x_tree.function()), y_tree.function())

    def test_fully_connected_network_rejected(self):
        fc = synthesize_fc_dpdn(parse("A & B"))
        with pytest.raises(ValueError):
            branch_devices(fc)


class TestNodeValidation:
    def test_series_requires_matching_joints(self):
        tree = extract_branch_tree("A & B")
        assert isinstance(tree, SPSeries)
        with pytest.raises(ValueError):
            SPSeries(children=tree.children, joints=(), top=tree.top, bottom=tree.bottom)

    def test_parallel_requires_two_children(self):
        leaf = extract_branch_tree("A")
        with pytest.raises(ValueError):
            SPParallel(children=(leaf,), top="TOP", bottom="BOT")
