"""Unit tests for the electrical substrate: technology cards, capacitance
extraction, charge-based energy models and waveform containers."""

import math

import numpy as np
import pytest

from repro.boolexpr import parse
from repro.core import synthesize_fc_dpdn
from repro.electrical import (
    CycleEnergySimulator,
    EventEnergyModel,
    Trace,
    WaveformSet,
    extract_capacitances,
    generic_65nm,
    generic_130nm,
    generic_180nm,
)
from repro.network import build_genuine_dpdn, complementary_assignments


class TestTechnology:
    def test_default_card_values_are_sane(self, technology):
        assert 0.5 < technology.vdd < 3.0
        assert technology.vtn < technology.vdd / 2
        assert technology.c_junction > 0 and technology.r_on_nmos > 0

    def test_switching_energy(self, technology):
        assert technology.switching_energy(1e-15) == pytest.approx(
            1e-15 * technology.vdd**2
        )

    def test_scaled_override(self, technology):
        scaled = technology.scaled(vdd=1.2)
        assert scaled.vdd == 1.2
        assert scaled.c_junction == technology.c_junction

    def test_cards_are_ordered_by_node(self):
        assert generic_180nm().vdd > generic_130nm().vdd > generic_65nm().vdd

    def test_describe_mentions_units(self, technology):
        text = technology.describe()
        assert "fF" in text and "ns" in text


class TestCapacitanceExtraction:
    def test_every_node_has_positive_capacitance(self, and2_fc, technology):
        extraction = extract_capacitances(and2_fc, technology)
        for node in and2_fc.nodes():
            assert extraction.capacitance(node) > 0

    def test_outputs_are_matched_for_symmetric_network(self, and2_fc, technology):
        extraction = extract_capacitances(and2_fc, technology)
        assert extraction.capacitance(and2_fc.x) == pytest.approx(
            extraction.capacitance(and2_fc.y)
        )

    def test_junctions_add_up(self, technology):
        dpdn = build_genuine_dpdn(parse("A"))
        extraction = extract_capacitances(dpdn, technology, include_sense_amplifier=False)
        # X carries one junction (device A) plus output wire capacitance.
        assert extraction.capacitance(dpdn.x) == pytest.approx(
            technology.c_junction + technology.c_wire_output
        )

    def test_sense_amplifier_adds_capacitance(self, and2_fc, technology):
        bare = extract_capacitances(and2_fc, technology, include_sense_amplifier=False)
        with_sa = extract_capacitances(and2_fc, technology)
        assert with_sa.capacitance(and2_fc.x) > bare.capacitance(and2_fc.x)

    def test_total_and_describe(self, and2_fc, technology):
        extraction = extract_capacitances(and2_fc, technology)
        assert extraction.total() == pytest.approx(
            sum(extraction.node_capacitance.values())
        )
        assert "fF" in extraction.describe()


class TestEventEnergyModel:
    def test_fc_gate_is_constant_power(self, and2_fc, technology):
        model = EventEnergyModel(and2_fc, technology, style="sabl")
        energies = [record.energy for record in model.sweep()]
        assert max(energies) == pytest.approx(min(energies))

    def test_genuine_gate_varies(self, and2_genuine, technology):
        model = EventEnergyModel(and2_genuine, technology, style="sabl")
        energies = [record.energy for record in model.sweep()]
        assert max(energies) > min(energies)

    def test_cvsl_varies_more_than_sabl_for_genuine_network(self, and2_genuine, technology):
        sabl = EventEnergyModel(and2_genuine, technology, style="sabl")
        cvsl = EventEnergyModel(and2_genuine, technology, style="cvsl")
        def spread(model):
            energies = [record.energy for record in model.sweep()]
            return (max(energies) - min(energies)) / max(energies)
        assert spread(cvsl) >= spread(sabl)

    def test_unknown_style_rejected(self, and2_fc, technology):
        with pytest.raises(ValueError):
            EventEnergyModel(and2_fc, technology, style="static")

    def test_output_load_adds_constant_energy(self, and2_fc, technology):
        small = EventEnergyModel(and2_fc, technology, output_load=1e-15)
        large = EventEnergyModel(and2_fc, technology, output_load=10e-15)
        delta = large.event_energy({"A": True, "B": True}) - small.event_energy(
            {"A": True, "B": True}
        )
        assert delta == pytest.approx(9e-15 * technology.vdd**2)

    def test_discharged_capacitance_includes_internal_nodes_only_when_connected(
        self, and2_genuine, technology
    ):
        model = EventEnergyModel(and2_genuine, technology, style="sabl")
        floating = model.discharged_capacitance({"A": False, "B": False})
        connected = model.discharged_capacitance({"A": True, "B": True})
        assert connected > floating


class TestCycleEnergySimulator:
    def test_fc_gate_cycle_energy_is_constant_after_warmup(self, and2_fc, technology):
        simulator = CycleEnergySimulator(and2_fc, technology)
        events = list(complementary_assignments(["A", "B"])) * 3
        energies = [simulator.step(event).energy for event in events]
        steady = energies[1:]
        assert max(steady) == pytest.approx(min(steady))

    def test_genuine_gate_exhibits_memory_effect(self, and2_genuine, technology):
        simulator = CycleEnergySimulator(and2_genuine, technology)
        # (1,1) discharges the internal node W; a following (0,0) leaves it
        # discharged and floating, so the W recharge only happens when it
        # is reconnected -- the per-cycle energy depends on the history.
        first = simulator.step({"A": True, "B": True})
        second = simulator.step({"A": False, "B": False})
        third = simulator.step({"A": True, "B": True})
        assert third.energy > second.energy
        assert second.recharged_internal_nodes == frozenset()

    def test_energy_depends_on_history_not_only_current_input(self, and2_genuine, technology):
        simulator = CycleEnergySimulator(and2_genuine, technology)
        simulator.step({"A": True, "B": True})
        after_discharging_history = simulator.step({"A": True, "B": False}).energy
        simulator.reset()
        simulator.step({"A": False, "B": False})
        after_floating_history = simulator.step({"A": True, "B": False}).energy
        assert after_discharging_history >= after_floating_history

    def test_reset_restores_initial_state(self, and2_genuine, technology):
        simulator = CycleEnergySimulator(and2_genuine, technology)
        first_run = [simulator.step({"A": True, "B": True}).energy for _ in range(2)]
        simulator.reset()
        second_run = [simulator.step({"A": True, "B": True}).energy for _ in range(2)]
        assert first_run == second_run

    def test_run_helper(self, and2_fc, technology):
        simulator = CycleEnergySimulator(and2_fc, technology)
        records = simulator.run(list(complementary_assignments(["A", "B"])))
        assert len(records) == 4
        assert [record.cycle for record in records] == [0, 1, 2, 3]


class TestWaveforms:
    def test_trace_integral_of_constant(self):
        trace = Trace("i", np.linspace(0, 1e-9, 101), np.full(101, 2e-6))
        assert trace.integral() == pytest.approx(2e-15, rel=1e-6)

    def test_trace_window_and_at(self):
        trace = Trace("v", np.linspace(0.0, 1.0, 11), np.linspace(0.0, 1.0, 11))
        assert trace.at(0.55) == pytest.approx(0.55)
        window = trace.window(0.2, 0.4)
        assert window.times[0] >= 0.2 and window.times[-1] <= 0.4

    def test_rms_difference_of_identical_traces_is_zero(self):
        times = np.linspace(0, 1, 50)
        trace = Trace("a", times, np.sin(times))
        assert trace.rms_difference(Trace("b", times, np.sin(times))) == pytest.approx(0.0)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            Trace("bad", np.array([0.0, 1.0]), np.array([0.0]))

    def test_waveform_set_supply_energy(self):
        times = np.linspace(0, 1e-9, 101)
        current = np.full(101, 1e-6)
        waveforms = WaveformSet.from_arrays(times, {"i_VDD": current})
        assert waveforms.supply_charge("i_VDD") == pytest.approx(1e-15, rel=1e-6)
        assert waveforms.supply_energy(1.8, "i_VDD") == pytest.approx(1.8e-15, rel=1e-6)

    def test_waveform_set_membership(self):
        waveforms = WaveformSet.from_arrays([0.0, 1.0], {"v": [0.0, 1.0]})
        assert "v" in waveforms and "missing" not in waveforms
        assert waveforms.names() == ["v"]
