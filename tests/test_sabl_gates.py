"""Unit tests for the SABL and CVSL gate models, clocking and transients."""

import pytest

from repro.boolexpr import parse
from repro.core import synthesize_fc_dpdn
from repro.electrical import generic_180nm
from repro.network import build_genuine_dpdn, complementary_assignments
from repro.sabl import CVSLGate, PhaseSchedule, SABLGate, clock_waveform, input_rail_waveform


@pytest.fixture(scope="module")
def fast_technology():
    """A coarse time-step card so transient tests stay quick."""
    return generic_180nm().scaled(time_step=10e-12)


class TestClocking:
    def test_phase_schedule(self):
        schedule = PhaseSchedule(generic_180nm())
        period = schedule.period
        assert schedule.phase_of(0.1 * period) == "precharge"
        assert schedule.phase_of(0.6 * period) == "evaluation"
        assert schedule.cycle_of(2.5 * period) == 2
        assert schedule.evaluation_start(1) == pytest.approx(1.5 * period)

    def test_clock_waveform_levels(self):
        technology = generic_180nm()
        clock = clock_waveform(technology, cycles=2)
        assert clock(0.1 * technology.clock_period) == 0.0
        assert clock(0.7 * technology.clock_period) == technology.vdd
        assert clock(5 * technology.clock_period) == 0.0

    def test_input_rails_are_zero_then_complementary(self):
        technology = generic_180nm()
        true_rail = input_rail_waveform([True, False], True, technology)
        false_rail = input_rail_waveform([True, False], False, technology)
        early = 0.1 * technology.half_period
        late = 0.9 * technology.half_period
        evaluation = 1.5 * technology.half_period
        assert true_rail(early) == 0.0 and false_rail(early) == 0.0
        assert true_rail(late) == technology.vdd and false_rail(late) == 0.0
        assert true_rail(evaluation) == technology.vdd
        # second cycle carries the value False
        second_eval = technology.clock_period + 1.5 * technology.half_period
        assert true_rail(second_eval) == 0.0 and false_rail(second_eval) == technology.vdd


class TestSABLGateChargeView:
    def test_fc_gate_constant_event_energy(self, and2_fc):
        gate = SABLGate(and2_fc)
        energies = [record.energy for record in gate.energy_sweep()]
        assert max(energies) == pytest.approx(min(energies))

    def test_genuine_gate_varies(self, and2_genuine):
        gate = SABLGate(and2_genuine)
        energies = [record.energy for record in gate.energy_sweep()]
        assert max(energies) > min(energies)

    def test_logic_output(self, and2_fc):
        gate = SABLGate(and2_fc)
        assert gate.logic_output({"A": True, "B": True}) is True
        assert gate.logic_output({"A": True, "B": False}) is False

    def test_cycle_simulator_accessor(self, and2_fc):
        gate = SABLGate(and2_fc)
        simulator = gate.cycle_simulator()
        first = simulator.step({"A": True, "B": True})
        assert first.energy > 0

    def test_variables(self, and2_fc):
        assert SABLGate(and2_fc).variables() == ["A", "B"]


class TestSABLGateTransient:
    @pytest.fixture(scope="class")
    def transients(self, request):
        technology = generic_180nm().scaled(time_step=10e-12)
        gate = SABLGate(synthesize_fc_dpdn(parse("A & B"), name="AND2_fc"), technology)
        events = {
            "01": [{"A": False, "B": True}] * 2,
            "11": [{"A": True, "B": True}] * 2,
        }
        return {key: gate.transient(value) for key, value in events.items()}

    def test_outputs_resolve_differentially(self, transients):
        for result in transients.values():
            out, outb = result.output_traces()
            finals = sorted([out.values[-1], outb.values[-1]])
            assert finals[0] < 0.2
            assert finals[1] > result.technology.vdd - 0.2

    def test_opposite_inputs_steer_opposite_outputs(self, transients):
        out01, _ = transients["01"].output_traces()
        out11, _ = transients["11"].output_traces()
        assert (out01.values[-1] > 1.0) != (out11.values[-1] > 1.0)

    def test_supply_charge_is_input_independent(self, transients):
        # Fig. 3/4: the charge drawn per steady-state cycle is (nearly)
        # the same for the (0,1) and the (1,1) input events.
        steady01 = transients["01"].cycle_charges[-1]
        steady11 = transients["11"].cycle_charges[-1]
        assert steady01 == pytest.approx(steady11, rel=0.02)

    def test_supply_current_waveforms_nearly_identical(self, transients):
        i01 = transients["01"].supply_current()
        i11 = transients["11"].supply_current()
        assert i01.rms_difference(i11) < 0.05 * i11.peak()

    def test_describe(self, transients):
        assert "cycle" in transients["11"].describe()


class TestCVSLGate:
    def test_genuine_cvsl_power_varies(self, and2_genuine):
        gate = CVSLGate(and2_genuine)
        energies = [record.energy for record in gate.energy_sweep()]
        spread = (max(energies) - min(energies)) / max(energies)
        assert spread > 0.05

    def test_cvsl_transient_discharges_exactly_one_output(self, and2_genuine):
        technology = generic_180nm().scaled(time_step=10e-12)
        gate = CVSLGate(and2_genuine, technology)
        result = gate.transient([{"A": True, "B": True}])
        x_final = result.waveforms[and2_genuine.x].values[-1]
        y_final = result.waveforms[and2_genuine.y].values[-1]
        assert (x_final < 0.3) != (y_final < 0.3)

    def test_cvsl_logic_and_variables(self, and2_genuine):
        gate = CVSLGate(and2_genuine)
        assert gate.variables() == ["A", "B"]
        assert gate.logic_output({"A": True, "B": False}) is False
