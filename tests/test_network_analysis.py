"""Unit tests for connectivity / floating-node / depth analysis."""

import pytest

from repro.boolexpr import parse
from repro.core import synthesize_fc_dpdn
from repro.network import (
    branch_conducts,
    complementary_assignments,
    conducting_components,
    conducting_paths,
    discharged_nodes,
    evaluation_depth,
    evaluation_depths,
    floating_internal_nodes,
    full_connectivity_report,
    is_fully_connected,
    build_genuine_dpdn,
    path_variables,
    structural_paths,
)


class TestComplementaryAssignments:
    def test_count(self):
        assert len(list(complementary_assignments(["A", "B", "C"]))) == 8

    def test_single_variable(self):
        assert list(complementary_assignments(["A"])) == [{"A": False}, {"A": True}]


class TestFloatingNodes:
    def test_genuine_and2_floats_node_w_for_00(self, and2_genuine):
        # The paper's Fig. 2 discussion: with A=B=0 the internal node W is
        # disconnected from both X and Z and keeps its charge.
        floating = floating_internal_nodes(and2_genuine, {"A": False, "B": False})
        assert len(floating) == 1

    def test_genuine_and2_discharges_node_w_for_11(self, and2_genuine):
        assert floating_internal_nodes(and2_genuine, {"A": True, "B": True}) == set()

    def test_fc_and2_never_floats(self, and2_fc):
        for assignment in complementary_assignments(["A", "B"]):
            assert floating_internal_nodes(and2_fc, assignment) == set()

    def test_discharged_nodes_always_contain_externals(self, and2_genuine):
        for assignment in complementary_assignments(["A", "B"]):
            discharged = discharged_nodes(and2_genuine, assignment)
            assert {"X", "Y", "Z"} <= discharged


class TestFullConnectivity:
    def test_genuine_is_not_fully_connected(self, and2_genuine):
        assert not is_fully_connected(and2_genuine)

    def test_fc_is_fully_connected(self, and2_fc):
        assert is_fully_connected(and2_fc)

    def test_network_without_internal_nodes_is_trivially_fc(self):
        dpdn = build_genuine_dpdn(parse("A"))
        assert is_fully_connected(dpdn)

    def test_report_covers_every_event(self, and2_genuine):
        report = full_connectivity_report(and2_genuine)
        assert len(report) == 4
        floating_events = [record for record in report if record.floating]
        assert len(floating_events) == 1
        assert not floating_events[0].is_fully_connected


class TestBranchConduction:
    def test_exactly_one_branch_conducts(self, and2_fc):
        for assignment in complementary_assignments(["A", "B"]):
            x_on = branch_conducts(and2_fc, assignment, and2_fc.x)
            y_on = branch_conducts(and2_fc, assignment, and2_fc.y)
            assert x_on != y_on

    def test_components_partition_nodes(self, and2_genuine):
        components = conducting_components(and2_genuine, {"A": True, "B": False})
        all_nodes = sorted(node for component in components for node in component)
        assert all_nodes == sorted(and2_genuine.nodes())


class TestPathsAndDepth:
    def test_conducting_path_of_and2_11(self, and2_fc):
        paths = conducting_paths(and2_fc, {"A": True, "B": True}, "X", "Z")
        assert any(path_variables(path) == {"A", "B"} for path in paths)

    def test_structural_paths_superset_of_conducting(self, and2_fc):
        structural = structural_paths(and2_fc, "X", "Z")
        conducting = conducting_paths(and2_fc, {"A": True, "B": True}, "X", "Z")
        assert len(structural) >= len(conducting)

    def test_evaluation_depth_of_genuine_and2_varies(self, and2_genuine):
        depths = set(evaluation_depths(and2_genuine).values())
        assert depths == {1, 2}

    def test_evaluation_depth_of_fc_and2(self, and2_fc):
        depths = evaluation_depths(and2_fc)
        assert depths[(("A", False), ("B", False))] == 1
        assert depths[(("A", True), ("B", True))] == 2

    def test_depth_none_for_non_conducting_network(self):
        # A deliberately broken single-branch network: Y never conducts.
        from repro.network import DifferentialPullDownNetwork, Literal

        dpdn = DifferentialPullDownNetwork("broken")
        dpdn.add_transistor(Literal("A", True), "X", "n1")
        assert evaluation_depth(dpdn, {"A": False}) is None

    def test_fc_synthesis_of_three_input_gate_depths(self):
        dpdn = synthesize_fc_dpdn(parse("A & B & C"))
        depths = [depth for depth in evaluation_depths(dpdn).values()]
        assert all(depth is not None for depth in depths)
        assert max(depth for depth in depths) == 3
