"""The deprecated top-level shims: warnings and faithful delegation."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
import repro.core
import repro.electrical
import repro.flow
import repro.network
import repro.power
import repro.sabl
from repro.sabl import map_expressions


@pytest.fixture(scope="module")
def small_circuit():
    return map_expressions({"F": repro.parse("A & B")}, name="shim_target")


class TestAcquireCircuitTracesShim:
    def test_emits_deprecation_warning(self, small_circuit):
        with pytest.warns(DeprecationWarning, match="repro.flow.DesignFlow"):
            repro.acquire_circuit_traces(small_circuit, key=0, trace_count=4)

    def test_delegates_with_identical_results(self, small_circuit):
        kwargs = dict(key=0, trace_count=32, noise_std=0.01, seed=123)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = repro.acquire_circuit_traces(small_circuit, **kwargs)
        direct = repro.power.acquire_circuit_traces(small_circuit, **kwargs)
        np.testing.assert_array_equal(shimmed.traces, direct.traces)
        np.testing.assert_array_equal(shimmed.plaintexts, direct.plaintexts)
        assert shimmed.key == direct.key
        assert shimmed.description == direct.description

    def test_forwards_batch_size_switch(self, small_circuit):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            batched = repro.acquire_circuit_traces(
                small_circuit, key=0, trace_count=16, seed=5, batch_size=4
            )
            sequential = repro.acquire_circuit_traces(
                small_circuit, key=0, trace_count=16, seed=5, batch_size=None
            )
        np.testing.assert_allclose(
            batched.traces, sequential.traces, rtol=1e-9, atol=0.0
        )

    def test_direct_power_function_does_not_warn(self, small_circuit):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.power.acquire_circuit_traces(small_circuit, key=0, trace_count=4)


class TestReExportShims:
    """The other top-level stage functions are plain delegating re-exports."""

    @pytest.mark.parametrize(
        "name, module",
        [
            ("parse", "repro.boolexpr"),
            ("truth_table", "repro.boolexpr"),
            ("equivalent", "repro.boolexpr"),
            ("build_genuine_dpdn", "repro.network"),
            ("is_fully_connected", "repro.network"),
            ("to_spice_subckt", "repro.network"),
            ("synthesize_fc_dpdn", "repro.core"),
            ("transform_to_fc", "repro.core"),
            ("enhance_fc_dpdn", "repro.core"),
            ("verify_gate", "repro.core"),
            ("build_cell", "repro.core"),
            ("build_library", "repro.core"),
            ("generic_180nm", "repro.electrical"),
            ("map_expressions", "repro.sabl"),
            ("build_sbox_circuit", "repro.power"),
            ("dpa_difference_of_means", "repro.power"),
            ("cpa_correlation", "repro.power"),
            ("energy_statistics", "repro.power"),
        ],
    )
    def test_top_level_name_is_the_subpackage_object(self, name, module):
        import importlib

        assert getattr(repro, name) is getattr(importlib.import_module(module), name)

    def test_synthesis_shim_produces_identical_networks(self):
        expression = repro.parse("(A | B) & C")
        via_shim = repro.synthesize_fc_dpdn(expression, name="G")
        via_core = repro.core.synthesize_fc_dpdn(expression, name="G")
        assert repro.to_spice_subckt(via_shim) == repro.to_spice_subckt(via_core)
        assert repro.verify_gate(via_shim, expression).passed

    def test_flow_api_is_canonical(self):
        assert repro.DesignFlow is repro.flow.DesignFlow
        assert repro.FlowConfig is repro.flow.FlowConfig
        assert repro.AssessmentConfig is repro.flow.AssessmentConfig
