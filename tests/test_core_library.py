"""Unit tests for the secure cell-library generator."""

import pytest

from repro.boolexpr import equivalent, parse
from repro.core import (
    CellSpec,
    STANDARD_CELL_SPECS,
    build_cell,
    build_library,
    library_statistics,
)
from repro.network import is_fully_connected

# Building the whole catalogue once keeps the module fast.
SUBSET = [spec for spec in STANDARD_CELL_SPECS if spec.name in ("AND2", "OR2", "XOR2", "OAI22", "MAJ3")]


@pytest.fixture(scope="module")
def library_subset():
    return build_library(SUBSET)


class TestCatalogue:
    def test_catalogue_contains_the_paper_examples(self):
        names = {spec.name for spec in STANDARD_CELL_SPECS}
        assert "AND2" in names and "OAI22" in names

    def test_spec_functions_parse(self):
        for spec in STANDARD_CELL_SPECS:
            assert spec.function().variables()

    def test_catalogue_has_no_duplicate_names(self):
        names = [spec.name for spec in STANDARD_CELL_SPECS]
        assert len(names) == len(set(names))


class TestBuildCell:
    def test_all_variants_present(self, library_subset):
        cell = library_subset["AND2"]
        variants = cell.variants()
        assert {"genuine", "fully_connected", "enhanced", "transformed"} <= set(variants)

    def test_functions_are_equivalent_across_variants(self, library_subset):
        cell = library_subset["OAI22"]
        for variant in cell.variants().values():
            assert variant.function is not None
            assert equivalent(variant.function, cell.function)

    def test_fc_variants_are_fully_connected(self, library_subset):
        for cell in library_subset.values():
            assert is_fully_connected(cell.fully_connected), cell.spec.name
            assert is_fully_connected(cell.enhanced), cell.spec.name

    def test_genuine_variant_of_and2_is_not_fully_connected(self, library_subset):
        assert not is_fully_connected(library_subset["AND2"].genuine)

    def test_custom_cell(self):
        cell = build_cell(CellSpec("CUSTOM", "(A & B & C) | (~A & D)"))
        assert is_fully_connected(cell.fully_connected)

    def test_broken_spec_raises(self):
        with pytest.raises(Exception):
            build_cell(CellSpec("BROKEN", "A & ~A"))


class TestStatistics:
    def test_statistics_rows(self, library_subset):
        rows = library_statistics(library_subset)
        assert len(rows) == len(library_subset)
        by_name = {row.name: row for row in rows}
        and2 = by_name["AND2"]
        assert and2.inputs == 2
        assert and2.genuine_devices == and2.fc_devices == 4
        assert and2.dummy_devices == 2
        assert and2.fc_fully_connected and not and2.genuine_fully_connected

    def test_enhanced_depth_is_constant(self, library_subset):
        for row in library_statistics(library_subset):
            low, high = row.enhanced_depth_range
            assert low == high, row.name

    def test_enhanced_devices_at_least_fc_devices(self, library_subset):
        for row in library_statistics(library_subset):
            assert row.enhanced_devices >= row.fc_devices
