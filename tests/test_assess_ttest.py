"""TVLA t-tests: streaming equivalence, verdicts and corner cases."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.assess import (
    FixedVsRandomAccumulator,
    TVLATTest,
    ttest_fixed_vs_random,
    welch_t_from_moments,
    welch_t_statistic,
)
from repro.assess.accumulators import AssessmentChunk, StreamingMoments


def _one_shot_welch(a: np.ndarray, b: np.ndarray) -> float:
    """Reference Welch t on materialised arrays (textbook formula)."""
    return float(
        (a.mean() - b.mean())
        / np.sqrt(a.var(ddof=1) / a.size + b.var(ddof=1) / b.size)
    )


def _one_shot_order2(a: np.ndarray, b: np.ndarray) -> float:
    """Reference second-order t: first-order test on centered squares."""
    return _one_shot_welch((a - a.mean()) ** 2, (b - b.mean()) ** 2)


@pytest.fixture(scope="module")
def leaky_campaign():
    rng = np.random.default_rng(17)
    count = 20_000
    labels = rng.random(count) < 0.5
    # Mean leak for order 1 plus a variance leak for order 2.
    energies = rng.normal(1.0, 0.05 + 0.01 * labels, size=count) + 0.01 * labels
    return energies, labels


class TestWelchStatistic:
    def test_matches_textbook_formula(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 1.0, size=500)
        b = rng.normal(0.2, 1.5, size=700)
        statistic, dof = welch_t_statistic(
            a.mean(), a.var(ddof=1), a.size, b.mean(), b.var(ddof=1), b.size
        )
        assert np.isclose(statistic, _one_shot_welch(a, b), rtol=1e-12)
        assert 0 < dof < a.size + b.size

    def test_zero_variance_conventions(self):
        statistic, _ = welch_t_statistic(1.0, 0.0, 10, 1.0, 0.0, 10)
        assert statistic == 0.0
        statistic, _ = welch_t_statistic(2.0, 0.0, 10, 1.0, 0.0, 10)
        assert statistic == np.inf
        statistic, _ = welch_t_statistic(1.0, 0.0, 10, 2.0, 0.0, 10)
        assert statistic == -np.inf

    def test_requires_two_samples_per_class(self):
        with pytest.raises(ValueError):
            welch_t_statistic(0.0, 1.0, 1, 0.0, 1.0, 10)


class TestStreamingEquivalence:
    @pytest.mark.parametrize("chunk_size", (64, 500, 1000, 4096))
    def test_streaming_matches_one_shot(self, leaky_campaign, chunk_size):
        energies, labels = leaky_campaign
        fixed, random = energies[labels], energies[~labels]
        result = ttest_fixed_vs_random(energies, labels, chunk_size=chunk_size)
        assert np.isclose(
            result.test(1).statistic,
            _one_shot_welch(fixed, random),
            rtol=1e-10,
            atol=0.0,
        )
        assert np.isclose(
            result.test(2).statistic,
            _one_shot_order2(fixed, random),
            rtol=1e-10,
            atol=0.0,
        )

    def test_chunkings_agree_with_each_other(self, leaky_campaign):
        energies, labels = leaky_campaign
        reference = ttest_fixed_vs_random(energies, labels)
        for chunk_size in (33, 977, 8192):
            streamed = ttest_fixed_vs_random(energies, labels, chunk_size=chunk_size)
            for order in (1, 2):
                assert np.isclose(
                    streamed.test(order).statistic,
                    reference.test(order).statistic,
                    rtol=1e-10,
                    atol=0.0,
                )


class TestVerdicts:
    def test_leak_detected(self, leaky_campaign):
        energies, labels = leaky_campaign
        result = ttest_fixed_vs_random(energies, labels)
        assert result.test(1).leaks
        assert result.leaks
        assert result.max_abs_t > 4.5

    def test_no_leak_on_identical_distributions(self):
        rng = np.random.default_rng(23)
        energies = rng.normal(1.0, 0.1, size=10_000)
        labels = rng.random(10_000) < 0.5
        result = ttest_fixed_vs_random(energies, labels)
        assert not result.leaks

    def test_constant_power_campaign_reports_zero(self):
        # Noiseless constant-power traces: summation round-off must not
        # be amplified into a spurious statistic.
        energies = np.full(3000, 6.709392e-12)
        labels = np.zeros(3000, dtype=bool)
        labels[:1500] = True
        result = ttest_fixed_vs_random(energies, labels, chunk_size=700)
        assert result.test(1).statistic == 0.0
        assert result.test(2).statistic == 0.0
        assert not result.leaks

    def test_genuinely_different_constants_still_flag(self):
        energies = np.concatenate([np.full(100, 1.0), np.full(100, 2.0)])
        labels = np.arange(200) < 100
        result = ttest_fixed_vs_random(energies, labels, orders=(1,))
        assert np.isinf(result.test(1).statistic)
        assert result.leaks

    def test_threshold_is_configurable(self, leaky_campaign):
        energies, labels = leaky_campaign
        lenient = ttest_fixed_vs_random(energies, labels, threshold=1e6)
        assert not lenient.leaks
        assert lenient.test(1).threshold == 1e6


class TestResultObjects:
    def test_round_trip_and_rows(self, leaky_campaign):
        energies, labels = leaky_campaign
        result = ttest_fixed_vs_random(energies, labels)
        record = result.to_dict()
        assert record["method"] == "ttest"
        assert record["leaks"] == result.leaks
        assert len(record["tests"]) == 2
        rows = result.summary_rows()
        assert [row[0] for row in rows] == ["ttest", "ttest"]
        assert "order" in result.test(1).summary()
        with pytest.raises(KeyError):
            result.test(3)

    def test_non_finite_statistics_serialise_to_strict_json(self):
        energies = np.concatenate([np.full(100, 1.0), np.full(100, 2.0)])
        labels = np.arange(200) < 100
        result = ttest_fixed_vs_random(energies, labels, orders=(1,))
        assert np.isinf(result.test(1).statistic)
        record = json.dumps(result.to_dict(), allow_nan=False)  # must not raise
        assert '"inf"' in record or '"-inf"' in record

    def test_counts_recorded(self, leaky_campaign):
        energies, labels = leaky_campaign
        result = ttest_fixed_vs_random(energies, labels)
        assert result.test(1).count_fixed == int(labels.sum())
        assert result.test(1).count_random == int((~labels).sum())


class TestMethodValidation:
    def test_bad_orders(self):
        with pytest.raises(ValueError):
            TVLATTest(orders=())
        with pytest.raises(ValueError):
            TVLATTest(orders=(3,))

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            TVLATTest(threshold=0.0)

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            ttest_fixed_vs_random(np.ones(4), np.zeros(4, dtype=bool), chunk_size=0)

    def test_order_validation_in_moment_test(self):
        moments = StreamingMoments()
        moments.update(np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError):
            welch_t_from_moments(moments, moments, order=3)

    @pytest.mark.parametrize("order", (1, 2))
    def test_undersized_class_raises_descriptive_error(self, order):
        # Both orders must surface the sample-count problem, not a
        # ZeroDivisionError from the order-2 moment arithmetic.
        energies = np.array([1.0, 2.0, 3.0, 4.0])
        labels = np.array([True, False, False, False])
        with pytest.raises(ValueError, match="two samples per class"):
            ttest_fixed_vs_random(energies, labels, orders=(order,))

    def test_streaming_method_accepts_chunks(self):
        rng = np.random.default_rng(4)
        method = TVLATTest()
        for _ in range(4):
            energies = rng.normal(1.0, 0.1, size=256)
            labels = rng.random(256) < 0.5
            method.update(
                AssessmentChunk(np.zeros(256, dtype=np.int64), labels, energies)
            )
        result = method.finalize()
        assert result.test(1).count_fixed + result.test(1).count_random == 1024
