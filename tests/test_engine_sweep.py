"""The sweep driver and the ``repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.engine import build_grid, run_sweep
from repro.engine.cli import main
from repro.flow import CampaignConfig, ConfigError, FlowConfig


class TestBuildGrid:
    def test_cartesian_product_in_axis_order(self):
        base = FlowConfig(name="grid")
        cells = build_grid(
            base,
            {"gate_style": ["sabl", "cvsl"], "noise_std": [0.0, 0.01]},
        )
        assert len(cells) == 4
        names = [name for name, _, _ in cells]
        assert names[0] == "grid/gate_style=sabl/noise_std=0.0"
        assert names[-1] == "grid/gate_style=cvsl/noise_std=0.01"
        _, overrides, config = cells[1]
        assert overrides == {"gate_style": "sabl", "noise_std": 0.01}
        assert config.campaign.gate_style == "sabl"
        assert config.campaign.noise_std == 0.01
        assert config.name == names[1]

    def test_dotted_paths_reach_other_sections(self):
        cells = build_grid(
            FlowConfig(name="grid"),
            {"assessment.traces_per_class": [100, 200], "synthesis.method": ["transform"]},
        )
        assert len(cells) == 2
        assert cells[0][2].assessment.traces_per_class == 100
        assert cells[1][2].synthesis.method == "transform"

    def test_no_axes_yields_the_base_cell(self):
        base = FlowConfig(name="solo")
        assert build_grid(base, {}) == [("solo", {}, base)]

    def test_bad_axis_values_fail_eagerly(self):
        with pytest.raises(ConfigError):
            build_grid(FlowConfig(), {"gate_style": []})
        with pytest.raises(ConfigError):
            build_grid(FlowConfig(), {"gate_style": "sabl"})  # string, not list
        with pytest.raises(ConfigError):
            build_grid(FlowConfig(), {"bogus_field": [1]})
        with pytest.raises(ConfigError):
            build_grid(FlowConfig(), {"campaign.trace_count": [0]})  # invalid value


class TestRunSweep:
    def test_grid_runs_and_reports(self, tmp_path):
        base = FlowConfig(
            name="mini", campaign=CampaignConfig(trace_count=40)
        )
        report = run_sweep(
            base,
            {"network_style": ["fc", "genuine"]},
            store=str(tmp_path / "store"),
        )
        assert len(report) == 2
        record = report.to_dict()
        assert [cell["overrides"]["network_style"] for cell in record["cells"]] == [
            "fc",
            "genuine",
        ]
        for cell in record["cells"]:
            assert cell["stages"]["traces"]["details"]["count"] == 40
            assert "analysis" in cell
        table = report.format_table()
        assert "network_style" in table and "fc" in table

    def test_shared_store_hits_across_identical_cells(self, tmp_path):
        base = FlowConfig(name="mini", campaign=CampaignConfig(trace_count=32))
        store = str(tmp_path / "store")
        first = run_sweep(base, {"gate_style": ["sabl"]}, store=store)
        second = run_sweep(base, {"gate_style": ["sabl"]}, store=store)
        assert (
            first.cells[0]["stages"]["traces"]["details"]["store"] == "miss"
        )
        assert (
            second.cells[0]["stages"]["traces"]["details"]["store"] == "hit"
        )

    def test_parallel_sweep_matches_serial(self, tmp_path):
        base = FlowConfig(name="mini", campaign=CampaignConfig(trace_count=32))
        axes = {"network_style": ["fc", "genuine"]}
        serial = run_sweep(base, axes)
        parallel = run_sweep(base, axes, workers=2)

        def strip(report):
            cells = []
            for cell in report.to_dict()["cells"]:
                cells.append(
                    {
                        "cell": cell["cell"],
                        "analysis": cell["analysis"],
                        "count": cell["stages"]["traces"]["details"]["count"],
                        "mean": cell["stages"]["traces"]["details"]["mean_energy_J"],
                    }
                )
            return cells

        assert strip(serial) == strip(parallel)


class TestCli:
    def test_run_prints_a_summary(self, capsys):
        code = main(["run", "--set", "trace_count=32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DesignFlow" in out and "traces" in out

    def test_sweep_writes_json_and_uses_the_store(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--set",
                "trace_count=32",
                "--axis",
                "network_style=fc,genuine",
                "--store",
                str(tmp_path / "store"),
                "--json",
                str(out_file),
            ]
        )
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert len(payload["cells"]) == 2
        assert payload["axes"] == {"network_style": ["fc", "genuine"]}

        code = main(["store", "ls", "--store", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "artifacts" in out

        code = main(["store", "clear", "--store", str(tmp_path / "store")])
        assert code == 0
        assert "removed" in capsys.readouterr().out

    def test_bad_config_exits_nonzero(self, capsys):
        code = main(["run", "--set", "trace_count=0"])
        assert code == 2
        assert "repro run" in capsys.readouterr().err

    def test_assessment_via_cli(self, capsys):
        code = main(
            [
                "run",
                "--set",
                "source=model",
                "--set",
                "noise_std=0.2",
                "--set",
                "assessment.enabled=true",
                "--set",
                "assessment.traces_per_class=80",
                "--set",
                "trace_count=32",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Leakage assessment" in out
