"""Unit and property tests for the expression transforms."""

import pytest

from repro.boolexpr import (
    And,
    Not,
    Or,
    Var,
    Xor,
    cofactor,
    complement,
    dual,
    equivalent,
    is_literal,
    literal_polarity,
    literal_variable,
    parse,
    product_of_sums,
    shannon_expansion,
    substitute,
    sum_of_products,
    to_nnf,
)
from repro.boolexpr.transforms import is_nnf

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings

from strategies import expression_strategy


class TestLiterals:
    def test_is_literal(self):
        assert is_literal(Var("A"))
        assert is_literal(Not(Var("A")))
        assert not is_literal(Not(Not(Var("A"))))
        assert not is_literal(parse("A & B"))

    def test_literal_variable_and_polarity(self):
        assert literal_variable(Var("A")) == "A"
        assert literal_variable(Not(Var("A"))) == "A"
        assert literal_polarity(Var("A")) is True
        assert literal_polarity(Not(Var("A"))) is False

    def test_literal_helpers_reject_compounds(self):
        with pytest.raises(ValueError):
            literal_variable(parse("A & B"))
        with pytest.raises(ValueError):
            literal_polarity(parse("A | B"))


class TestComplement:
    def test_de_morgan_on_and(self):
        assert complement(parse("A & B")) == parse("~A | ~B")

    def test_de_morgan_on_or(self):
        assert complement(parse("A | B")) == parse("~A & ~B")

    def test_complement_is_semantically_negation(self):
        expr = parse("(A & B) | (~C & D)")
        negated = complement(expr)
        assert equivalent(negated, Not(expr))

    def test_double_complement_is_identity_semantically(self):
        expr = parse("(A | B) & C")
        assert equivalent(complement(complement(expr)), expr)

    def test_complement_result_is_nnf(self):
        expr = parse("~(A & (B | ~C)) ^ D")
        assert is_nnf(complement(expr))


class TestNNF:
    def test_removes_xor(self):
        expr = to_nnf(parse("A ^ B"))
        assert is_nnf(expr)
        assert equivalent(expr, parse("A ^ B"))

    def test_pushes_negations_to_literals(self):
        expr = to_nnf(parse("~(A & (B | ~C))"))
        assert is_nnf(expr)

    def test_idempotent(self):
        expr = to_nnf(parse("~(A ^ (B & C))"))
        assert to_nnf(expr) == expr


class TestDual:
    def test_dual_swaps_operators(self):
        assert dual(parse("A & B")) == parse("A | B")
        assert dual(parse("A | (B & C)")) == parse("A & (B | C)")

    def test_dual_is_involution(self):
        expr = parse("(A & B) | (C & ~D)")
        assert dual(dual(expr)) == expr

    def test_dual_equals_complement_of_complemented_inputs(self):
        # dual(f)(x) == ~f(~x)
        expr = parse("(A & B) | C")
        renamed = substitute(
            complement(expr), {"A": Not(Var("A")), "B": Not(Var("B")), "C": Not(Var("C"))}
        )
        assert equivalent(dual(expr), renamed)


class TestSubstituteAndCofactor:
    def test_substitute_replaces_variables(self):
        expr = substitute(parse("A & B"), {"A": parse("C | D")})
        assert equivalent(expr, parse("(C | D) & B"))

    def test_substitute_leaves_unmapped_variables(self):
        expr = substitute(parse("A & B"), {"A": Var("X")})
        assert expr.variables() == frozenset({"X", "B"})

    def test_cofactor(self):
        expr = parse("(A & B) | C")
        assert equivalent(cofactor(expr, "A", True), parse("B | C"))
        assert equivalent(cofactor(expr, "A", False), parse("C"))

    def test_shannon_expansion_recombines(self):
        expr = parse("(A & B) | (~A & C)")
        positive, negative = shannon_expansion(expr, "A")
        recombined = Or(And(Var("A"), positive), And(Not(Var("A")), negative))
        assert equivalent(recombined, expr)


class TestCanonicalForms:
    def test_sum_of_products_equivalent(self):
        expr = parse("(A | B) & (C | ~A)")
        assert equivalent(sum_of_products(expr), expr)

    def test_product_of_sums_equivalent(self):
        expr = parse("(A & B) | (~C & D)")
        assert equivalent(product_of_sums(expr), expr)

    def test_sop_of_constant_functions(self):
        assert sum_of_products(parse("A & ~A")).evaluate({"A": True}) is False
        assert product_of_sums(parse("A | ~A")).evaluate({"A": False}) is True


class TestProperties:
    @given(expression_strategy())
    @settings(max_examples=60, deadline=None)
    def test_complement_negates(self, expr):
        assert equivalent(complement(expr), Not(expr))

    @given(expression_strategy())
    @settings(max_examples=60, deadline=None)
    def test_nnf_preserves_function_and_is_nnf(self, expr):
        lowered = to_nnf(expr)
        assert is_nnf(lowered)
        assert equivalent(lowered, expr)

    @given(expression_strategy(max_leaves=6))
    @settings(max_examples=40, deadline=None)
    def test_sop_is_equivalent(self, expr):
        assert equivalent(sum_of_products(expr), expr)
