"""The sharded runner: parallel == serial, merge reduce, RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SerialExecutor, get_executor, register_executor
from repro.engine.executors import EXECUTORS
from repro.flow import (
    AssessmentConfig,
    CampaignConfig,
    DesignFlow,
    ExecutionConfig,
    FlowConfig,
    FlowError,
    register_assessment,
)
from repro.flow.registry import ASSESSMENTS
from repro.power import acquire_circuit_traces, acquire_model_traces, build_sbox_circuit

TRACES = 48
SHARD = 16


def _sbox_flow(execution, **campaign):
    campaign.setdefault("trace_count", TRACES)
    config = FlowConfig(
        name="sbox_dpa",
        campaign=CampaignConfig(**campaign),
        execution=execution,
    )
    return DesignFlow.sbox(0xB, config=config)


class TestTraceEquivalence:
    def test_process_pool_is_bit_identical_to_serial(self):
        serial = _sbox_flow(ExecutionConfig(shard_size=SHARD), noise_std=0.01)
        parallel = _sbox_flow(
            ExecutionConfig(workers=2, shard_size=SHARD), noise_std=0.01
        )
        st, pt = serial.traces(), parallel.traces()
        assert np.array_equal(st.plaintexts, pt.plaintexts)
        assert np.array_equal(st.traces, pt.traces)
        assert serial.result("traces").details["shards"] == 3
        assert parallel.result("traces").details["executor"] == "process"

    def test_worker_count_does_not_change_the_result(self):
        two = _sbox_flow(ExecutionConfig(workers=2, shard_size=SHARD))
        four = _sbox_flow(ExecutionConfig(workers=4, shard_size=SHARD))
        assert np.array_equal(two.traces().traces, four.traces().traces)

    def test_model_source_shards_identically(self):
        serial = _sbox_flow(
            ExecutionConfig(shard_size=SHARD), source="model", noise_std=0.3
        )
        parallel = _sbox_flow(
            ExecutionConfig(workers=2, shard_size=SHARD), source="model", noise_std=0.3
        )
        assert np.array_equal(serial.traces().traces, parallel.traces().traces)
        assert np.array_equal(serial.traces().plaintexts, parallel.traces().plaintexts)

    def test_custom_expression_flows_shard_too(self):
        def build(execution):
            return DesignFlow(
                {"F": "(A | B) & C", "G": "A ^ B"},
                FlowConfig(
                    name="custom",
                    campaign=CampaignConfig(trace_count=TRACES),
                    execution=execution,
                ),
            )

        serial = build(ExecutionConfig(shard_size=SHARD))
        parallel = build(ExecutionConfig(workers=2, shard_size=SHARD))
        assert np.array_equal(serial.traces().traces, parallel.traces().traces)

    def test_inactive_execution_keeps_the_legacy_stream(self):
        legacy = _sbox_flow(ExecutionConfig())
        direct = acquire_circuit_traces(
            build_sbox_circuit(0xB, "fc", max_fanin=2),
            key=0xB,
            trace_count=TRACES,
            seed=2005,
        )
        assert np.array_equal(legacy.traces().plaintexts, direct.plaintexts)
        assert "shards" not in legacy.result("traces").details

    def test_mtd_statistics_match_between_serial_and_parallel(self):
        from repro.assess import success_rate_curve
        from repro.flow import get_sbox

        def curve(execution):
            flow = _sbox_flow(
                execution, source="model", model_leakage="hamming",
                noise_std=0.5, trace_count=96,
            )
            return success_rate_curve(
                flow.traces(), get_sbox("present"),
                steps=(16, 48, 96), repetitions=5, seed=3,
            )

        serial = curve(ExecutionConfig(shard_size=SHARD))
        parallel = curve(ExecutionConfig(workers=2, shard_size=SHARD))
        for a, b in zip(serial.points, parallel.points):
            assert a.trace_count == b.trace_count
            assert np.isclose(a.success_rate, b.success_rate, rtol=1e-10, atol=0.0)
            assert np.isclose(a.mean_rank, b.mean_rank, rtol=1e-10, atol=0.0)
        assert serial.mtd == parallel.mtd

    def test_sharded_analysis_still_reports_attacks(self):
        flow = _sbox_flow(
            ExecutionConfig(workers=2, shard_size=SHARD),
            network_style="genuine",
            noise_std=0.01,
        )
        report = flow.run()
        assert "analysis" in report
        assert set(report["analysis"].value) == {"dom", "cpa"}


class TestAssessmentEquivalence:
    def _flow(self, execution):
        config = FlowConfig(
            name="sbox_dpa",
            campaign=CampaignConfig(
                network_style="genuine", gate_style="cvsl", noise_std=0.01
            ),
            assessment=AssessmentConfig(
                enabled=True, traces_per_class=200, chunk_size=64
            ),
            execution=execution,
        )
        return DesignFlow.sbox(0xB, config=config)

    def test_sharded_assessment_matches_serial_bitwise(self):
        serial = self._flow(ExecutionConfig(shard_size=100))
        parallel = self._flow(ExecutionConfig(workers=2, shard_size=100))
        s = serial.assessment()["ttest"]
        p = parallel.assessment()["ttest"]
        for order in (1, 2):
            assert s.test(order).statistic == p.test(order).statistic
        assert s.test(1).count_fixed == 200
        assert parallel.result("assessment").details["shards"] == 4

    def test_stats_method_merges_too(self):
        config = FlowConfig(
            name="sbox_dpa",
            campaign=CampaignConfig(source="model", noise_std=0.2),
            assessment=AssessmentConfig(
                enabled=True, methods=("ttest", "stats"),
                traces_per_class=150, chunk_size=64,
            ),
            execution=ExecutionConfig(shard_size=60),
        )
        serial = DesignFlow.sbox(0xB, config=config)
        parallel = DesignFlow.sbox(
            0xB,
            config=config.replace(
                execution=ExecutionConfig(workers=2, shard_size=60)
            ),
        )
        s = serial.assessment()["stats"]
        p = parallel.assessment()["stats"]
        assert s.fixed["count"] == p.fixed["count"] == 150
        assert np.isclose(s.fixed["mean"], p.fixed["mean"], rtol=1e-10, atol=0.0)
        assert np.isclose(s.random["mean"], p.random["mean"], rtol=1e-10, atol=0.0)

    def test_unmergeable_method_fails_with_a_clear_error(self):
        class NoMerge:
            def __init__(self):
                self.count = 0

            def update(self, chunk):
                self.count += len(chunk)

            def finalize(self):
                return {"count": self.count}

        register_assessment("nomerge", lambda config: NoMerge())
        try:
            config = FlowConfig(
                name="sbox_dpa",
                campaign=CampaignConfig(source="model"),
                assessment=AssessmentConfig(
                    enabled=True, methods=("nomerge",), traces_per_class=40,
                    chunk_size=16,
                ),
                execution=ExecutionConfig(shard_size=20),
            )
            flow = DesignFlow.sbox(0xB, config=config)
            with pytest.raises(FlowError, match="merge"):
                flow.assessment()
        finally:
            ASSESSMENTS.unregister("nomerge")


class TestExecutors:
    def test_registry_lists_builtins(self):
        assert "serial" in EXECUTORS and "process" in EXECUTORS

    def test_custom_executor_is_honoured(self):
        calls = []

        class CountingExecutor(SerialExecutor):
            def map(self, fn, payloads):
                calls.append(len(payloads))
                return super().map(fn, payloads)

        register_executor("counting", lambda workers: CountingExecutor())
        try:
            flow = _sbox_flow(ExecutionConfig(executor="counting", shard_size=SHARD))
            flow.traces()
            assert calls == [3]  # one map() call with all three shards
        finally:
            EXECUTORS.unregister("counting")

    def test_unknown_executor_raises(self):
        flow = _sbox_flow(ExecutionConfig(executor="warp-drive"))
        with pytest.raises(Exception, match="warp-drive"):
            flow.traces()

    def test_one_worker_process_pool_is_effectively_serial(self):
        executor = get_executor("process", 1)
        assert executor.effectively_serial
        # Runs in-process: even an unpicklable fn works.
        assert executor.map(lambda x: x * 2, [21, 0]) == [42, 0]
        assert not get_executor("process", 4).effectively_serial

    def test_process_executor_at_one_worker_uses_the_local_flow(self):
        from repro.engine.runner import _WORKER_FLOWS

        _WORKER_FLOWS.clear()
        flow = _sbox_flow(ExecutionConfig(executor="process", shard_size=SHARD))
        flow.traces()
        # The parent process must not have rebuilt the flow from spec.
        assert _WORKER_FLOWS == {}


class TestSeedLikeAcquisition:
    """Satellite: acquisition accepts Generator / SeedSequence seeds."""

    def test_spawned_children_give_non_overlapping_model_streams(self):
        root = np.random.SeedSequence(2005)
        first, second = root.spawn(2)
        a = acquire_model_traces(key=0x3, trace_count=64, seed=first)
        b = acquire_model_traces(key=0x3, trace_count=64, seed=second)
        assert not np.array_equal(a.plaintexts, b.plaintexts)
        # Same child -> same stream (reproducible).
        again = acquire_model_traces(key=0x3, trace_count=64, seed=root.spawn(1)[0])
        assert not np.array_equal(a.plaintexts, again.plaintexts)

    def test_generator_is_consumed_in_place(self):
        rng = np.random.default_rng(9)
        first = acquire_model_traces(key=0x3, trace_count=32, seed=rng)
        second = acquire_model_traces(key=0x3, trace_count=32, seed=rng)
        assert not np.array_equal(first.plaintexts, second.plaintexts)
        # A fresh generator replays both campaigns in sequence.
        replay = np.random.default_rng(9)
        a = acquire_model_traces(key=0x3, trace_count=32, seed=replay)
        b = acquire_model_traces(key=0x3, trace_count=32, seed=replay)
        assert np.array_equal(first.plaintexts, a.plaintexts)
        assert np.array_equal(second.plaintexts, b.plaintexts)

    def test_circuit_acquisition_accepts_seed_sequence(self):
        circuit = build_sbox_circuit(0xB, "fc", max_fanin=2)
        child = np.random.SeedSequence(11).spawn(1)[0]
        a = acquire_circuit_traces(circuit, key=0xB, trace_count=16, seed=child)
        b = acquire_circuit_traces(circuit, key=0xB, trace_count=16, seed=child)
        assert np.array_equal(a.plaintexts, b.plaintexts)
        assert np.array_equal(a.traces, b.traces)
