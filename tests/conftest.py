"""Shared fixtures for the test-suite."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

# The project is a src-layout package.  When it is not installed (plain
# ``python -m pytest`` from a fresh checkout), put ``<repo>/src`` on the
# path so the suite runs without the ``PYTHONPATH=src`` incantation; an
# installed ``repro`` (pip install -e .) always wins.
if importlib.util.find_spec("repro") is None:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.boolexpr import parse
from repro.core import synthesize_fc_dpdn
from repro.electrical import generic_180nm
from repro.network import build_genuine_dpdn


# --------------------------------------------------------------------------- fixtures


@pytest.fixture
def and2():
    """The paper's AND-NAND function."""
    return parse("A & B")


@pytest.fixture
def oai22():
    """The paper's Fig. 5 design-example function."""
    return parse("((A | B) & (C | D))'")


@pytest.fixture
def and2_genuine(and2):
    return build_genuine_dpdn(and2, name="AND2_genuine")


@pytest.fixture
def and2_fc(and2):
    return synthesize_fc_dpdn(and2, name="AND2_fc")


@pytest.fixture
def technology():
    return generic_180nm()


# A small set of representative functions used by several test modules.
REPRESENTATIVE_FUNCTIONS = {
    "AND2": "A & B",
    "OR2": "A | B",
    "XOR2": "A ^ B",
    "AND3": "A & B & C",
    "AO21": "(A & B) | C",
    "OAI21": "((A | B) & C)'",
    "OAI22": "((A | B) & (C | D))'",
    "MAJ3": "(A & B) | (B & C) | (A & C)",
    "MUX2": "(S & A) | (~S & B)",
}


@pytest.fixture(params=sorted(REPRESENTATIVE_FUNCTIONS))
def representative_function(request):
    """Parametrised fixture yielding (name, expression) pairs."""
    name = request.param
    return name, parse(REPRESENTATIVE_FUNCTIONS[name])


# --------------------------------------------------------------------------- strategies
#
# Hypothesis strategies live in ``tests/strategies.py``; import them from
# there (``from strategies import expression_strategy``), not from this
# conftest, so that collection from the repository root is unambiguous.
