"""The perf layer: benchmark registry, history store, gate, CLI.

The acceptance behavior pinned here: the regression gate fires on an
injected >= 2x slowdown (naming the metric), stays quiet across
back-to-back unchanged runs, refuses to call jitter a regression, and
never gates on metrics measured with more workers than CPUs.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.cli import main
from repro.perf import (
    BENCHMARKS,
    Benchmark,
    BenchResult,
    MetricSpec,
    PerfError,
    append_history,
    benchmark_names,
    compare_histories,
    compare_records,
    cpus_available,
    get_benchmark,
    read_history,
    register_benchmark,
    regressions,
    resolve_selector,
    run_benchmark,
)
from repro.reporting import format_bench_record, format_deltas, format_history
from repro.reporting.bench import write_benchmark_json


def _synthetic(name="synth", values=None, workers=None):
    """A deterministic benchmark yielding ``values`` in sequence."""
    produced = list(values or [100.0])
    state = {"calls": 0}

    def run(quick):
        value = produced[min(state["calls"], len(produced) - 1)]
        state["calls"] += 1
        return BenchResult(
            metrics={"rate": value},
            results={"raw": {"rate": value}},
            params={"quick": quick},
        )

    return Benchmark(
        name=name,
        description="synthetic test benchmark",
        metrics=(
            MetricSpec("rate", "traces/s", higher_is_better=True, workers=workers),
        ),
        run=run,
    )


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(benchmark_names()) >= {"engine", "kernel", "layout", "scenarios"}
        bench = get_benchmark("engine")
        assert any(spec.name == "tps_w1" for spec in bench.metrics)

    def test_unknown_benchmark_lists_available(self):
        with pytest.raises(KeyError, match="engine"):
            get_benchmark("nonexistent")

    def test_duplicate_registration_raises(self):
        bench = _synthetic("dup_check")
        register_benchmark(bench)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_benchmark(bench)
        finally:
            BENCHMARKS.unregister("dup_check")

    def test_benchmark_requires_metrics(self):
        with pytest.raises(PerfError, match="declares no metrics"):
            Benchmark(name="bad", description="", metrics=(), run=lambda q: None)

    def test_metric_spec_rejects_bad_slug(self):
        with pytest.raises(PerfError, match="simple slug"):
            MetricSpec("has space", "x")

    def test_undeclared_metrics_are_rejected(self):
        bench = _synthetic()

        def rogue(quick):
            return BenchResult(metrics={"surprise": 1.0})

        rogue_bench = Benchmark(
            name="rogue", description="", metrics=bench.metrics, run=rogue
        )
        with pytest.raises(PerfError, match="undeclared metrics: surprise"):
            run_benchmark(rogue_bench)


class TestRunAndHistory:
    def test_repetitions_record_median_and_spread(self):
        bench = _synthetic(values=[100.0, 120.0, 110.0])
        record = run_benchmark(bench, repetitions=3)
        entry = record["metrics"]["rate"]
        assert entry["value"] == 110.0
        assert entry["spread_rel"] == pytest.approx(20.0 / 110.0, rel=1e-4)
        assert entry["values"] == [100.0, 120.0, 110.0]
        assert record["repetitions"] == 3

    def test_single_repetition_has_zero_spread(self):
        record = run_benchmark(_synthetic(values=[42.0]))
        assert record["metrics"]["rate"]["spread_rel"] == 0.0
        assert "values" not in record["metrics"]["rate"]

    def test_impossible_worker_count_marks_unreliable(self):
        record = run_benchmark(_synthetic(workers=9999))
        assert record["metrics"]["rate"]["unreliable"] is True
        assert record["metrics"]["rate"]["workers"] == 9999

    def test_environment_records_cpu_budget(self):
        record = run_benchmark(_synthetic())
        assert record["environment"]["cpu_count"] >= 1
        assert 1 <= record["environment"]["cpu_affinity"] <= (
            record["environment"]["cpu_count"]
        )
        assert cpus_available() == record["environment"]["cpu_affinity"]

    def test_history_round_trips(self, tmp_path):
        path = tmp_path / "H.jsonl"
        first = run_benchmark(_synthetic(values=[10.0]))
        second = run_benchmark(_synthetic(values=[11.0]))
        append_history(first, path)
        append_history(second, path)
        records = read_history(path)
        assert [r["metrics"]["rate"]["value"] for r in records] == [10.0, 11.0]
        assert read_history(path, benchmark="other") == []

    def test_missing_history_is_empty(self, tmp_path):
        assert read_history(tmp_path / "absent.jsonl") == []

    def test_malformed_history_names_the_line(self, tmp_path):
        path = tmp_path / "H.jsonl"
        path.write_text('{"benchmark": "ok", "metrics": {}}\nnot json\n')
        with pytest.raises(PerfError, match=r"H\.jsonl:2"):
            read_history(path)


class TestSelectors:
    def _records(self):
        records = []
        for index, sha in enumerate(["aaa111", "bbb222", "ccc333"]):
            record = run_benchmark(_synthetic(values=[float(index)]))
            record["provenance"]["git_sha"] = sha * 6
            records.append(record)
        return records

    def test_latest_prev_and_index(self):
        records = self._records()
        assert resolve_selector(records, "latest") is records[-1]
        assert resolve_selector(records, "last") is records[-1]
        assert resolve_selector(records, "prev") is records[-2]
        assert resolve_selector(records, "0") is records[0]
        assert resolve_selector(records, "-1") is records[-1]

    def test_sha_prefix(self):
        records = self._records()
        assert resolve_selector(records, "bbb") is records[1]

    def test_errors_are_descriptive(self):
        records = self._records()
        with pytest.raises(PerfError, match="no history record matches"):
            resolve_selector(records, "zzz")
        with pytest.raises(PerfError, match="out of range"):
            resolve_selector(records, "99")
        with pytest.raises(PerfError, match="empty"):
            resolve_selector([], "latest")
        with pytest.raises(PerfError, match="at least two"):
            resolve_selector(records[:1], "prev")


class TestGate:
    def _pair(self, old_value, new_value, spread=0.0, workers=None):
        bench = _synthetic(values=[old_value], workers=workers)
        old = run_benchmark(bench)
        new = run_benchmark(_synthetic(values=[new_value], workers=workers))
        old["metrics"]["rate"]["spread_rel"] = spread
        new["metrics"]["rate"]["spread_rel"] = spread
        return old, new

    def test_detects_injected_2x_slowdown_by_name(self):
        old, new = self._pair(1000.0, 450.0)
        deltas = compare_records(old, new)
        failed = regressions(deltas)
        assert len(failed) == 1
        assert failed[0].metric == "rate"
        assert failed[0].worsening == pytest.approx(0.55)
        assert failed[0].regression

    def test_unchanged_runs_pass(self):
        old, new = self._pair(1000.0, 1000.0)
        assert regressions(compare_records(old, new)) == []

    def test_small_delta_below_threshold_passes(self):
        old, new = self._pair(1000.0, 950.0)
        assert regressions(compare_records(old, new)) == []

    def test_jitter_band_suppresses_noisy_regressions(self):
        # 30% slowdown, but the metric wobbles 20% run to run: the
        # worsening does not clear 2x the measured spread.
        old, new = self._pair(1000.0, 700.0, spread=0.20)
        deltas = compare_records(old, new)
        assert deltas[0].worsening == pytest.approx(0.30)
        assert regressions(deltas) == []
        # The same slowdown on a quiet metric gates.
        old, new = self._pair(1000.0, 700.0, spread=0.02)
        assert regressions(compare_records(old, new)) != []

    def test_unreliable_metrics_never_gate(self):
        old, new = self._pair(1000.0, 100.0, workers=9999)
        deltas = compare_records(old, new)
        assert deltas[0].unreliable
        assert regressions(deltas) == []

    def test_improvement_is_not_a_regression(self):
        old, new = self._pair(1000.0, 2000.0)
        deltas = compare_records(old, new)
        assert deltas[0].worsening < 0
        assert regressions(deltas) == []

    def test_lower_is_better_direction(self):
        bench = Benchmark(
            name="latency",
            description="",
            metrics=(MetricSpec("seconds", "s", higher_is_better=False),),
            run=lambda quick: BenchResult(metrics={"seconds": 1.0}),
        )
        old = run_benchmark(bench)
        new = run_benchmark(
            Benchmark(
                name="latency",
                description="",
                metrics=bench.metrics,
                run=lambda quick: BenchResult(metrics={"seconds": 3.0}),
            )
        )
        deltas = compare_records(old, new)
        assert deltas[0].worsening == pytest.approx(2.0)
        assert regressions(deltas) != []

    def test_cross_benchmark_comparison_refuses(self):
        old = run_benchmark(_synthetic(name="synth"))
        new = run_benchmark(_synthetic(name="other"))
        new["benchmark"] = "other"
        with pytest.raises(PerfError, match="different benchmarks"):
            compare_records(old, new)

    def test_compare_histories_pairs_per_benchmark(self):
        records = []
        for value in (100.0, 50.0):
            records.append(run_benchmark(_synthetic(values=[value])))
        deltas = compare_histories(records, "prev", "latest")
        assert [d.metric for d in regressions(deltas)] == ["rate"]


class TestCliBench:
    @pytest.fixture()
    def synth(self):
        bench = _synthetic("clisynth", values=[100.0, 100.0, 40.0])
        register_benchmark(bench, overwrite=True)
        yield bench
        BENCHMARKS.unregister("clisynth")

    def test_ls_lists_builtins(self, capsys):
        assert main(["bench", "ls"]) == 0
        out = capsys.readouterr().out
        for name in ("engine", "kernel", "layout", "scenarios"):
            assert name in out

    def test_run_requires_a_name_or_all(self, capsys):
        assert main(["bench", "run"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_run_records_history_and_json(self, synth, tmp_path, capsys):
        history = tmp_path / "H.jsonl"
        code = main(
            ["bench", "run", "clisynth", "--history", str(history), "--json", "-"]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload[0]["benchmark"] == "clisynth"
        assert history.exists()
        assert read_history(history)[0]["metrics"]["rate"]["value"] == 100.0
        assert "clisynth" in captured.err  # human tables moved to stderr

    def test_gate_passes_then_fails_on_slowdown(self, synth, tmp_path, capsys):
        history = tmp_path / "H.jsonl"
        for _ in range(2):  # two identical 100.0 runs
            assert main(["bench", "run", "clisynth", "--history", str(history)]) == 0
        assert (
            main(["bench", "compare", "prev", "latest", "--history", str(history),
                  "--gate"])
            == 0
        )
        capsys.readouterr()
        # Third run measures 40.0: a 60% slowdown must gate and name the
        # metric on stderr.
        assert main(["bench", "run", "clisynth", "--history", str(history)]) == 0
        code = main(
            ["bench", "compare", "prev", "latest", "--history", str(history),
             "--gate"]
        )
        assert code == 1
        assert "clisynth.rate" in capsys.readouterr().err

    def test_compare_without_gate_reports_but_passes(self, synth, tmp_path, capsys):
        history = tmp_path / "H.jsonl"
        for _ in range(3):
            assert main(["bench", "run", "clisynth", "--history", str(history)]) == 0
        assert (
            main(["bench", "compare", "prev", "latest", "--history", str(history)])
            == 0
        )

    def test_history_subcommand_lists_records(self, synth, tmp_path, capsys):
        history = tmp_path / "H.jsonl"
        main(["bench", "run", "clisynth", "--history", str(history)])
        capsys.readouterr()
        assert main(["bench", "history", "--history", str(history)]) == 0
        assert "clisynth" in capsys.readouterr().out

    def test_compare_with_empty_history_errors(self, tmp_path, capsys):
        code = main(
            ["bench", "compare", "prev", "latest", "--history",
             str(tmp_path / "none.jsonl")]
        )
        assert code == 2
        assert "nothing to compare" in capsys.readouterr().err

    def test_strict_refuses_a_dirty_tree(self, synth, tmp_path, capsys, monkeypatch):
        import repro.engine.cli as cli

        monkeypatch.setattr(
            cli, "benchmark_provenance",
            lambda: {"git_sha": "f" * 40, "git_dirty": True},
        )
        code = main(
            ["bench", "run", "clisynth", "--strict", "--history",
             str(tmp_path / "H.jsonl")]
        )
        assert code == 2
        assert "dirty" in capsys.readouterr().err
        assert not (tmp_path / "H.jsonl").exists()


class TestBenchJsonProvenance:
    def test_dirty_tree_warns(self, tmp_path, monkeypatch):
        import repro.reporting.bench as bench_mod

        monkeypatch.setattr(
            bench_mod, "benchmark_provenance",
            lambda: {"git_sha": "a" * 40, "git_dirty": True},
        )
        with pytest.warns(UserWarning, match="dirty working tree"):
            write_benchmark_json("dirtycheck", {"x": 1}, directory=tmp_path)

    def test_dirty_tree_strict_refuses(self, tmp_path, monkeypatch):
        import repro.reporting.bench as bench_mod

        monkeypatch.setattr(
            bench_mod, "benchmark_provenance",
            lambda: {"git_sha": "a" * 40, "git_dirty": True},
        )
        with pytest.raises(ValueError, match="dirty"):
            write_benchmark_json(
                "dirtycheck", {"x": 1}, directory=tmp_path, strict=True
            )
        assert not (tmp_path / "BENCH_dirtycheck.json").exists()

    def test_clean_tree_records_affinity(self, tmp_path, monkeypatch):
        import repro.reporting.bench as bench_mod

        monkeypatch.setattr(
            bench_mod, "benchmark_provenance",
            lambda: {"git_sha": "a" * 40, "git_dirty": False},
        )
        path = write_benchmark_json("cleancheck", {"x": 1}, directory=tmp_path)
        record = json.loads(path.read_text())
        assert record["environment"]["cpu_affinity"] >= 1


class TestFormatting:
    def test_record_and_history_tables_render(self):
        record = run_benchmark(_synthetic(values=[100.0, 105.0]), repetitions=2)
        assert "rate" in format_bench_record(record)
        assert "synth" in format_history([record])

    def test_delta_table_marks_verdicts(self):
        old = run_benchmark(_synthetic(values=[1000.0]))
        new = run_benchmark(_synthetic(values=[400.0]))
        rendered = format_deltas(compare_records(old, new))
        assert "REGRESSION" in rendered
