"""Unit tests of the observability layer: events, spans, metrics, sinks."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    NULL_OBSERVER,
    BufferSink,
    ConsoleSink,
    Counter,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    ObsError,
    Observer,
    SCHEMA_VERSION,
    TraceSummary,
    capture_events,
    get_observer,
    get_sink,
    make_event,
    observer_from_config,
    register_sink,
    set_observer,
    summarize_events,
    summarize_trace_file,
    use_observer,
    validate_event,
)
from repro.registry import DuplicateBackendError, UnknownBackendError
from repro.flow import ObservabilityConfig
from repro.reporting import format_trace_summary


def _buffered_observer():
    buffer = []
    return Observer((BufferSink(buffer),)), buffer


# --------------------------------------------------------------------- schema


class TestEventSchema:
    def test_round_trips_through_json(self):
        event = make_event(
            "span.end", "stage.traces", seq=3, duration_s=0.5, attrs={"flow": "t"}
        )
        line = json.dumps(event, sort_keys=True)
        assert validate_event(json.loads(line)) == event
        assert event["v"] == SCHEMA_VERSION
        assert event["seq"] == 3

    def test_metric_event_carries_a_float_value(self):
        event = make_event("counter", "store.hit", seq=0, value=2)
        assert event["value"] == 2.0
        assert isinstance(event["value"], float)
        validate_event(event)

    def test_non_scalar_attrs_are_stringified(self):
        event = make_event("span.start", "s", seq=0, attrs={"shape": (4, 2)})
        assert event["attrs"]["shape"] == "(4, 2)"
        validate_event(event)

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"v": 99}, "schema version"),
            ({"kind": "bogus"}, "unknown event kind"),
            ({"name": ""}, "non-empty string"),
            ({"ts": "noon"}, "'ts'"),
            ({"duration_s": -1.0}, "duration_s"),
        ],
    )
    def test_validation_names_the_violated_constraint(self, mutation, fragment):
        event = make_event("span.end", "stage.traces", seq=0, duration_s=0.1)
        event.update(mutation)
        with pytest.raises(ObsError, match=fragment):
            validate_event(event)

    def test_metric_without_value_is_rejected(self):
        event = make_event("counter", "store.hit", seq=0, value=1)
        del event["value"]
        with pytest.raises(ObsError, match="value"):
            validate_event(event)

    def test_non_mapping_is_rejected(self):
        with pytest.raises(ObsError, match="mapping"):
            validate_event(["not", "an", "event"])


# ---------------------------------------------------------------------- spans


class TestSpans:
    def test_nested_spans_emit_in_order(self):
        observer, buffer = _buffered_observer()
        with observer.span("outer", flow="t"):
            with observer.span("inner"):
                pass
        shape = [(e["kind"], e["name"]) for e in buffer]
        assert shape == [
            ("span.start", "outer"),
            ("span.start", "inner"),
            ("span.end", "inner"),
            ("span.end", "outer"),
        ]
        assert buffer[-1]["duration_s"] >= buffer[2]["duration_s"] >= 0
        assert buffer[0]["attrs"] == {"flow": "t"}
        assert [e["seq"] for e in buffer] == [0, 1, 2, 3]

    def test_error_span_records_and_propagates(self):
        observer, buffer = _buffered_observer()
        with pytest.raises(ValueError, match="boom"):
            with observer.span("stage.traces"):
                raise ValueError("boom")
        assert buffer[-1]["kind"] == "span.error"
        assert buffer[-1]["error"] == "ValueError: boom"
        assert buffer[-1]["duration_s"] >= 0
        validate_event(buffer[-1])

    def test_inactive_observer_reuses_one_null_span(self):
        assert not NULL_OBSERVER.active
        assert NULL_OBSERVER.span("a") is NULL_OBSERVER.span("b")
        NULL_OBSERVER.counter("store.hit")
        NULL_OBSERVER.histogram("h", 1.0)
        assert len(NULL_OBSERVER.metrics) == 0

    def test_observer_without_sinks_is_inactive(self):
        assert not Observer(()).active


# -------------------------------------------------------------------- metrics


class TestMetrics:
    def test_counter_only_increases(self):
        counter = Counter()
        counter.inc(2)
        assert counter.value == 2.0
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)

    def test_histogram_running_stats(self):
        hist = Histogram()
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_registry_rejects_type_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("store.hit")
        with pytest.raises(ValueError, match="Counter"):
            registry.gauge("store.hit")

    def test_observer_updates_its_registry(self):
        observer, buffer = _buffered_observer()
        observer.counter("store.hit")
        observer.counter("store.hit", 2)
        observer.gauge("g", 7.0)
        observer.histogram("h", 0.5)
        snap = observer.metrics.snapshot()
        assert snap["store.hit"]["value"] == 3.0
        assert snap["g"]["value"] == 7.0
        assert snap["h"]["count"] == 1
        assert [e["kind"] for e in buffer] == ["counter", "counter", "gauge", "histogram"]


# ---------------------------------------------------------------------- sinks


class TestSinks:
    def test_unknown_sink_name_raises(self):
        with pytest.raises(UnknownBackendError, match="statsd"):
            get_sink("statsd")

    def test_duplicate_registration_raises(self):
        with pytest.raises(DuplicateBackendError):
            register_sink("null", lambda config: None)

    def test_jsonl_factory_requires_a_trace_path(self):
        with pytest.raises(ObsError, match="trace"):
            get_sink("jsonl")(ObservabilityConfig(progress=True))

    def test_jsonl_sink_is_lazy_and_line_oriented(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        assert not path.exists()
        sink.emit(make_event("counter", "store.hit", seq=0, value=1))
        sink.emit(make_event("span.end", "s", seq=1, duration_s=0.1))
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            validate_event(json.loads(line))

    def test_console_verbosity_demotes_detail(self):
        stream = io.StringIO()
        sink = ConsoleSink(verbosity=1, stream=stream)
        sink.emit(make_event("span.end", "stage.traces", seq=0, duration_s=0.5))
        sink.emit(make_event("span.end", "shard.traces", seq=1, duration_s=0.2))
        sink.emit(make_event("span.error", "shard.traces", seq=2,
                             duration_s=0.1, error="ValueError: x"))
        text = stream.getvalue()
        assert "stage.traces done in 0.500s" in text
        assert "shard.traces done" not in text
        assert "FAILED" in text

        stream = io.StringIO()
        ConsoleSink(verbosity=2, stream=stream).emit(
            make_event("span.end", "shard.traces", seq=0, duration_s=0.2)
        )
        assert "shard.traces done" in stream.getvalue()

    def test_console_factory_opts_out_when_quiet(self):
        assert get_sink("console")(ObservabilityConfig(progress=True, verbosity=0)) is None


# ------------------------------------------------------------ current observer


class TestCurrentObserver:
    def test_use_observer_restores_the_previous(self):
        observer, _ = _buffered_observer()
        before = get_observer()
        with use_observer(observer):
            assert get_observer() is observer
        assert get_observer() is before

    def test_set_observer_none_installs_the_null(self):
        observer, _ = _buffered_observer()
        previous = set_observer(observer)
        try:
            assert set_observer(None) is observer
            assert get_observer() is NULL_OBSERVER
        finally:
            set_observer(previous)

    def test_capture_buffers_only_when_nothing_is_live(self):
        with capture_events(True) as (observer, buffer):
            assert buffer == []
            observer.counter("store.hit")
        assert len(buffer) == 1

        with capture_events(False) as (observer, buffer):
            assert buffer is None
            assert not observer.active

        live, live_buffer = _buffered_observer()
        with use_observer(live):
            with capture_events(True) as (observer, buffer):
                assert observer is live
                assert buffer is None
                observer.counter("store.hit")
        assert len(live_buffer) == 1

    def test_replay_preserves_provenance_and_folds_metrics(self):
        worker, worker_buffer = _buffered_observer()
        worker.counter("store.miss", 2)
        with worker.span("shard.traces", index=0):
            pass
        parent, parent_buffer = _buffered_observer()
        parent.counter("local", 1)
        parent.replay(worker_buffer)
        assert [e["seq"] for e in parent_buffer] == [0, 0, 1, 2]
        assert parent_buffer[1] == worker_buffer[0]
        assert parent.metrics.counter("store.miss").value == 2.0

    def test_observer_from_config(self, tmp_path):
        assert observer_from_config(ObservabilityConfig()) is NULL_OBSERVER
        traced = observer_from_config(
            ObservabilityConfig(trace=str(tmp_path / "e.jsonl"))
        )
        assert traced.active
        traced.close()
        # progress with verbosity 0 contributes no sink at all
        assert observer_from_config(
            ObservabilityConfig(progress=True, verbosity=0)
        ) is NULL_OBSERVER


# --------------------------------------------------------------------- config


class TestObservabilityConfig:
    def test_defaults_are_inactive(self):
        config = ObservabilityConfig()
        assert not config.active
        assert config.verbosity == 1

    def test_any_output_activates(self, tmp_path):
        assert ObservabilityConfig(trace=str(tmp_path / "e.jsonl")).active
        assert ObservabilityConfig(progress=True).active
        assert ObservabilityConfig(sinks=("null",)).active

    def test_round_trips_through_dict(self, tmp_path):
        config = ObservabilityConfig(
            trace=str(tmp_path / "e.jsonl"), progress=True, verbosity=2
        )
        clone = ObservabilityConfig.from_dict(config.to_dict())
        assert clone == config

    def test_verbosity_is_validated(self):
        with pytest.raises(Exception):
            ObservabilityConfig(verbosity=9)


# -------------------------------------------------------------------- summary


class TestTraceSummary:
    def _events(self):
        observer, buffer = _buffered_observer()
        with observer.span("sweep", cells=2):
            with observer.span("sweep.cell", cell="g/a=1"):
                observer.counter("store.miss")
            observer.counter("sweep.cells_done", 1, cell="g/a=1")
            try:
                with observer.span("sweep.cell", cell="g/a=2"):
                    raise RuntimeError("bad cell")
            except RuntimeError:
                pass
            observer.histogram("shard.duration_s", 0.25)
            observer.histogram("shard.duration_s", 0.75)
        return buffer

    def test_aggregates_spans_counters_histograms_cells(self):
        summary = summarize_events(self._events())
        assert summary.events == len(self._events())
        assert summary.errors == 1
        assert summary.spans["sweep.cell"].count == 2
        assert summary.spans["sweep.cell"].errors == 1
        assert summary.counters["store.miss"] == 1.0
        assert summary.histograms["shard.duration_s"].mean == pytest.approx(0.5)
        assert summary.cells["g/a=1"]["error"] is None
        assert "RuntimeError: bad cell" in summary.cells["g/a=2"]["error"]

    def test_to_dict_is_json_able(self):
        payload = json.dumps(summarize_events(self._events()).to_dict())
        assert "sweep.cell" in payload

    def test_trace_file_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w") as handle:
            for event in self._events():
                handle.write(json.dumps(event) + "\n")
            handle.write("\n")  # blank lines are fine
        summary = summarize_trace_file(str(path))
        assert summary.events == len(self._events())

    def test_bad_lines_name_their_line_number(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"v": 1}\n')
        with pytest.raises(ObsError, match=r":1:"):
            summarize_trace_file(str(path))
        path.write_text("not json\n")
        with pytest.raises(ObsError, match="not valid JSON"):
            summarize_trace_file(str(path))

    def test_format_renders_every_table(self):
        text = format_trace_summary(summarize_events(self._events()))
        assert "Trace summary:" in text and "1 errors" in text
        assert "Spans" in text and "sweep.cell" in text
        assert "Counters" in text and "store.miss" in text
        assert "Histograms" in text and "shard.duration_s" in text
        assert "Sweep cells" in text and "g/a=2" in text


class TestSummaryStats:
    def test_empty_summary_formats(self):
        assert format_trace_summary(TraceSummary()) == "Trace summary: 0 events"


# ----------------------------------------------------- quantiles and profiling


class TestHistogramQuantiles:
    def test_exact_within_the_reservoir(self):
        h = Histogram()
        for value in range(101):  # 0..100
            h.observe(float(value))
        snapshot = h.to_dict()
        assert snapshot["p50"] == pytest.approx(50.0)
        assert snapshot["p95"] == pytest.approx(95.0)
        assert snapshot["p99"] == pytest.approx(99.0)

    def test_reservoir_stays_bounded_and_deterministic(self):
        def build():
            h = Histogram()
            for value in range(10_000):
                h.observe(float(value))
            return h

        first, second = build(), build()
        assert len(first._reservoir) == Histogram.RESERVOIR_SIZE
        # Fixed-seed replacement: identical streams, identical quantiles.
        assert first.quantiles() == second.quantiles()
        # The uniform reservoir keeps the median in the right ballpark.
        assert 3000 < first.quantile(0.5) < 7000

    def test_empty_histogram_snapshot_has_no_quantiles(self):
        assert Histogram().to_dict() == {"type": "histogram", "count": 0}
        assert Histogram().quantile(0.5) == 0.0

    def test_quantile_validates_its_range(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError, match="0..1"):
            h.quantile(1.5)

    def test_summary_reports_quantiles(self):
        events = [
            make_event("histogram", "shard.duration_s", seq=v, value=float(v))
            for v in range(1, 11)
        ]
        summary = summarize_events(events)
        snapshot = summary.to_dict()["histograms"]["shard.duration_s"]
        assert snapshot["p50"] == pytest.approx(5.5)
        rendered = format_trace_summary(summary)
        assert "p50" in rendered and "p95" in rendered and "p99" in rendered


class TestSinkFailureIsolation:
    class _Boom:
        def __init__(self):
            self.emitted = 0

        def emit(self, event):
            self.emitted += 1
            raise RuntimeError("sink exploded")

        def close(self):
            pass

    def test_raising_sink_is_disabled_not_fatal(self, capsys):
        boom = self._Boom()
        buffer = []
        observer = Observer((boom, BufferSink(buffer)))
        with observer.span("work"):
            observer.counter("ticks")
        # The run survived, the sibling sink saw every event, and the
        # broken sink was disabled after its first failure.
        assert boom.emitted == 1
        assert [e["kind"] for e in buffer] == ["span.start", "counter", "span.end"]
        assert "disabled after error" in capsys.readouterr().err

    def test_all_sinks_dead_deactivates_the_observer(self, capsys):
        observer = Observer((self._Boom(),))
        with observer.span("work"):
            pass
        assert observer.active is False
        capsys.readouterr()

    def test_close_failure_is_contained(self, capsys):
        class BadClose:
            def emit(self, event):
                pass

            def close(self):
                raise OSError("disk gone")

        observer = Observer((BadClose(), BufferSink([])))
        observer.close()  # must not raise
        assert "close" in capsys.readouterr().err.lower()


class TestJsonlConfigureTime:
    def test_unwritable_directory_fails_at_configure_time(self, tmp_path):
        with pytest.raises(ObsError, match="does not exist"):
            JsonlSink(str(tmp_path / "missing" / "events.jsonl"))

    def test_directory_path_is_rejected(self, tmp_path):
        with pytest.raises(ObsError, match="is a directory"):
            JsonlSink(str(tmp_path))

    def test_readonly_directory_is_rejected(self, tmp_path):
        import os

        target = tmp_path / "ro"
        target.mkdir()
        target.chmod(0o500)
        try:
            if os.access(target, os.W_OK):  # root bypasses permission bits
                pytest.skip("running with CAP_DAC_OVERRIDE; W_OK cannot fail")
            with pytest.raises(ObsError, match="not writable"):
                JsonlSink(str(target / "events.jsonl"))
        finally:
            target.chmod(0o700)

    def test_observer_from_config_fails_fast(self, tmp_path):
        config = ObservabilityConfig(
            trace=str(tmp_path / "missing" / "events.jsonl")
        )
        with pytest.raises(ObsError, match="does not exist"):
            observer_from_config(config)


class TestSpanProfiling:
    def _profiled_events(self):
        buffer = []
        observer = Observer((BufferSink(buffer),), profile=True, profile_top=5)

        def burn():
            return sum(i * i for i in range(20_000))

        with observer.span("outer"):
            with observer.span("inner"):
                burn()
            burn()
        return buffer

    def test_outermost_span_emits_a_profile_event(self):
        events = self._profiled_events()
        kinds = [e["kind"] for e in events]
        profiles = [e for e in events if e["kind"] == "span.profile"]
        # Only the outermost span profiles (cProfile is one-per-thread);
        # the inner span runs unprofiled inside it.
        assert len(profiles) == 1
        assert profiles[0]["name"] == "outer"
        assert kinds[-1] == "span.profile"  # emitted after span.end

    def test_profile_events_validate_and_carry_hotspots(self):
        profiles = [
            e for e in self._profiled_events() if e["kind"] == "span.profile"
        ]
        event = validate_event(profiles[0])
        assert event["v"] == SCHEMA_VERSION
        assert 1 <= len(event["profile"]) <= 5
        top = event["profile"][0]
        assert set(top) == {"func", "calls", "tottime_s", "cumtime_s"}
        assert any("burn" in entry["func"] for entry in event["profile"])

    def test_unprofiled_observer_emits_no_profile_events(self):
        observer, buffer = _buffered_observer()
        with observer.span("outer"):
            pass
        assert all(e["kind"] != "span.profile" for e in buffer)

    def test_summary_merges_profiles_across_spans(self):
        events = []
        for _ in range(3):
            events.extend(self._profiled_events())
        summary = summarize_events(events)
        assert "outer" in summary.profiles
        hotspots = summary.top_hotspots("outer")
        assert hotspots[0]["spans"] >= 1
        rendered = format_trace_summary(summary)
        assert "Profile hotspots: outer" in rendered

    def test_capture_events_inherits_profile_from_config(self):
        config = ObservabilityConfig(sinks=("null",), profile=True)
        with capture_events(config) as (observer, buffer):
            assert observer.profile is True
            with observer.span("outer"):
                sum(i for i in range(10_000))
        assert any(e["kind"] == "span.profile" for e in buffer)

    def test_profile_config_round_trips(self):
        config = ObservabilityConfig(profile=True, profile_top=7)
        clone = ObservabilityConfig.from_dict(config.to_dict())
        assert clone.profile is True and clone.profile_top == 7
        with pytest.raises(Exception, match="profile_top"):
            ObservabilityConfig(profile_top=0)
