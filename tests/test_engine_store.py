"""The artifact store: content keys, round-trips, pipeline cache hits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ArtifactStore, content_key, trace_store_record
from repro.flow import (
    AnalysisConfig,
    AssessmentConfig,
    CampaignConfig,
    DesignFlow,
    ExecutionConfig,
    FlowConfig,
    ScenarioConfig,
)
from repro.power.trace import TraceSet


def _traceset(count=32):
    rng = np.random.default_rng(5)
    return TraceSet(
        plaintexts=rng.integers(0, 16, size=count),
        traces=rng.normal(1e-12, 1e-14, size=count),
        key=0xB,
        description="test campaign",
    )


class TestContentKey:
    def test_is_order_insensitive_and_stable(self):
        a = content_key({"x": 1, "y": [1, 2], "z": {"k": "v"}})
        b = content_key({"z": {"k": "v"}, "y": [1, 2], "x": 1})
        assert a == b and len(a) == 64

    def test_differs_on_any_value_change(self):
        base = {"campaign": {"seed": 2005, "trace_count": 100}}
        changed = {"campaign": {"seed": 2006, "trace_count": 100}}
        assert content_key(base) != content_key(changed)

    def test_flow_record_covers_the_campaign_content(self):
        def key_of(**campaign):
            flow = DesignFlow.sbox(
                0xB, config=FlowConfig(campaign=CampaignConfig(**campaign))
            )
            return content_key(trace_store_record(flow))

        base = key_of(trace_count=100)
        assert key_of(trace_count=200) != base
        assert key_of(trace_count=100, gate_style="cvsl") != base
        assert key_of(trace_count=100, noise_std=0.01) != base
        assert key_of(trace_count=100, seed=7) != base

    def test_sharding_layout_is_part_of_the_content(self):
        def key_with(execution):
            flow = DesignFlow.sbox(
                0xB, config=FlowConfig(execution=execution)
            )
            return content_key(trace_store_record(flow))

        inactive = key_with(ExecutionConfig())
        sharded = key_with(ExecutionConfig(shard_size=64))
        assert inactive != sharded
        # Worker count and executor do not change the streams.
        assert key_with(ExecutionConfig(workers=4, shard_size=64)) == sharded


class TestScenarioKeys:
    """The scenario hash: name *and* parameters are campaign content."""

    @staticmethod
    def _key(scenario="sbox", params=None, analysis=None, **campaign):
        flow = DesignFlow(
            None,
            FlowConfig(
                campaign=CampaignConfig(scenario=scenario, **campaign),
                scenario=ScenarioConfig(params=params or {}),
                analysis=analysis or AnalysisConfig(),
            ),
        )
        return content_key(trace_store_record(flow))

    def test_scenario_name_is_part_of_the_key(self):
        assert self._key(scenario="sbox") != self._key(scenario="present_round")

    def test_scenario_params_are_part_of_the_key(self):
        base = self._key(scenario="present_round", params={"sboxes": 2})
        assert self._key(scenario="present_round", params={"sboxes": 4}) != base
        assert self._key(scenario="present_round", params={"sboxes": 2}) == base

    def test_rounds_param_differs_too(self):
        assert self._key(
            scenario="present_rounds", params={"sboxes": 1, "rounds": 2}
        ) != self._key(scenario="present_rounds", params={"sboxes": 1, "rounds": 3})

    def test_model_campaigns_key_on_the_attack_point(self):
        base = self._key(
            scenario="present_rounds",
            params={"sboxes": 1, "rounds": 2},
            source="model",
            model_leakage="distance",
        )
        moved = self._key(
            scenario="present_rounds",
            params={"sboxes": 1, "rounds": 2},
            source="model",
            model_leakage="distance",
            analysis=AnalysisConfig(target_round=2),
        )
        assert base != moved
        # Circuit campaigns ignore the analysis config entirely.
        assert self._key() == self._key(analysis=AnalysisConfig(target_bit=2))

    def test_bit_model_keys_on_target_sbox_and_bit(self):
        def bit_key(**analysis):
            return self._key(
                scenario="present_round",
                params={"sboxes": 2},
                source="model",
                model_leakage="bit",
                analysis=AnalysisConfig(**analysis),
            )

        assert bit_key(target_sbox=0) != bit_key(target_sbox=1)
        assert bit_key(target_bit=0) != bit_key(target_bit=1)


class TestArtifactStore:
    def test_traceset_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        original = _traceset()
        store.put_traceset("a" * 64, original, {"stage": "traces"})
        loaded = store.get_traceset("a" * 64)
        assert loaded is not None
        assert np.array_equal(loaded.plaintexts, original.plaintexts)
        assert np.array_equal(loaded.traces, original.traces)
        assert loaded.key == original.key
        assert loaded.description == original.description

    def test_memmap_load(self, tmp_path):
        plain = ArtifactStore(tmp_path / "store")
        plain.put_traceset("b" * 64, _traceset(), {"stage": "traces"})
        mapped = ArtifactStore(tmp_path / "store", mmap=True)
        loaded = mapped.get_traceset("b" * 64)
        assert np.array_equal(loaded.traces, _traceset().traces)

    def test_miss_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.get_traceset("c" * 64) is None
        assert store.get_json("c" * 64) is None

    def test_json_round_trip_and_kind_check(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_json("d" * 64, {"answer": 42}, {"stage": "assessment"}, kind="assessment")
        assert store.get_json("d" * 64, kind="assessment") == {"answer": 42}
        assert store.get_json("d" * 64, kind="json") is None

    def test_entries_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_traceset("e" * 64, _traceset(), {"stage": "traces"})
        store.put_json("f" * 64, [], {"stage": "assessment"}, kind="assessment")
        entries = store.entries()
        assert len(entries) == 2
        assert {meta["kind"] for meta in entries} == {"traces", "assessment"}
        assert store.size_bytes() > 0
        assert store.clear() == 2
        assert store.entries() == []

    def test_malformed_keys_are_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.path("../escape")
        with pytest.raises(ValueError):
            store.path("")


class TestPipelineCaching:
    def _flow(self, store_path, trace_count=40, **campaign):
        config = FlowConfig(
            name="sbox_dpa",
            campaign=CampaignConfig(trace_count=trace_count, **campaign),
            execution=ExecutionConfig(store=str(store_path)),
        )
        return DesignFlow.sbox(0xB, config=config)

    def test_second_run_hits_the_store(self, tmp_path):
        first = self._flow(tmp_path / "store")
        original = first.traces()
        assert first.result("traces").details["store"] == "miss"

        second = self._flow(tmp_path / "store")
        cached = second.traces()
        hit_details = second.result("traces").details
        assert hit_details["store"] == "hit"
        # Summary statistics come from the stored meta, not a re-walk.
        miss_details = first.result("traces").details
        assert hit_details["mean_energy_J"] == miss_details["mean_energy_J"]
        assert hit_details["count"] == miss_details["count"]
        assert np.array_equal(cached.traces, original.traces)
        assert np.array_equal(cached.plaintexts, original.plaintexts)

    def test_different_campaign_misses(self, tmp_path):
        self._flow(tmp_path / "store").traces()
        other = self._flow(tmp_path / "store", noise_std=0.01)
        other.traces()
        assert other.result("traces").details["store"] == "miss"

    def test_store_without_sharding_keeps_legacy_streams(self, tmp_path):
        plain = DesignFlow.sbox(
            0xB, config=FlowConfig(campaign=CampaignConfig(trace_count=40))
        )
        stored = self._flow(tmp_path / "store")
        assert np.array_equal(plain.traces().plaintexts, stored.traces().plaintexts)

    def test_assessment_results_cache_and_round_trip(self, tmp_path):
        def flow():
            config = FlowConfig(
                name="sbox_dpa",
                campaign=CampaignConfig(source="model", noise_std=0.2),
                assessment=AssessmentConfig(
                    enabled=True, methods=("ttest", "stats"),
                    traces_per_class=120, chunk_size=64,
                ),
                execution=ExecutionConfig(store=str(tmp_path / "store")),
            )
            return DesignFlow.sbox(0xB, config=config)

        first = flow()
        outcome = first.assessment()
        assert first.result("assessment").details["store"] == "miss"

        second = flow()
        cached = second.assessment()
        assert second.result("assessment").details["store"] == "hit"
        assert cached["ttest"].to_dict() == outcome["ttest"].to_dict()
        assert cached["stats"].to_dict() == outcome["stats"].to_dict()
        # Verdict helpers survive the round-trip.
        assert cached["ttest"].leaks == outcome["ttest"].leaks
        assert cached["ttest"].max_abs_t == outcome["ttest"].max_abs_t

    def test_pathlike_store_is_coerced_to_str(self, tmp_path):
        # The config must stay JSON-serialisable (worker/sweep payloads).
        config = ExecutionConfig(workers=2, shard_size=16, store=tmp_path / "store")
        assert isinstance(config.store, str)
        flow = DesignFlow.sbox(
            0xB,
            config=FlowConfig(
                name="sbox_dpa",
                campaign=CampaignConfig(trace_count=32),
                execution=config,
            ),
        )
        flow.traces()  # previously crashed serialising the worker spec
        assert flow.result("traces").details["store"] == "miss"

    def test_parallel_and_cached_runs_agree(self, tmp_path):
        config = FlowConfig(
            name="sbox_dpa",
            campaign=CampaignConfig(trace_count=48, noise_std=0.01),
            execution=ExecutionConfig(
                workers=2, shard_size=16, store=str(tmp_path / "store")
            ),
        )
        first = DesignFlow.sbox(0xB, config=config)
        original = first.traces()
        second = DesignFlow.sbox(0xB, config=config)
        cached = second.traces()
        assert second.result("traces").details["store"] == "hit"
        assert np.array_equal(cached.traces, original.traces)


class TestStagingHygiene:
    """Atomic writes must not leak staging dirs, and gc prunes orphans."""

    def test_failed_write_cleans_its_staging_dir(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "store")

        def explode(*_args, **_kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("repro.engine.store.np.save", explode)
        with pytest.raises(OSError, match="disk full"):
            store.put_traceset("a" * 64, _traceset(), {"stage": "traces"})
        leftovers = [p.name for p in store.root.iterdir() if p.name.startswith(".")]
        assert leftovers == []
        assert store.entries() == []

    def test_interrupted_write_cleans_its_staging_dir(self, tmp_path, monkeypatch):
        # KeyboardInterrupt is a BaseException: only a ``finally`` --
        # not ``except Exception`` -- catches it on the way out.
        store = ArtifactStore(tmp_path / "store")

        def interrupt(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.engine.store.json.dump", interrupt)
        with pytest.raises(KeyboardInterrupt):
            store.put_traceset("b" * 64, _traceset(), {"stage": "traces"})
        leftovers = [p.name for p in store.root.iterdir() if p.name.startswith(".")]
        assert leftovers == []

    def test_gc_prunes_only_orphaned_staging_dirs(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put_traceset("c" * 64, _traceset(), {"stage": "traces"})
        orphan = store.root / (".%s-dead0" % ("c" * 12))
        orphan.mkdir()
        (orphan / "traces.npy").write_bytes(b"partial")
        unrelated = store.root / ".not-a-staging-dir"
        unrelated.mkdir()
        assert store.gc() == 1
        assert not orphan.exists()
        assert unrelated.exists()  # only the staging pattern is pruned
        assert store.get_traceset("c" * 64) is not None

    def test_gc_min_age_spares_live_writers(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.root.mkdir(parents=True, exist_ok=True)
        fresh = store.root / (".%s-live0" % ("d" * 12))
        fresh.mkdir()
        assert store.gc(min_age_s=3600.0) == 0
        assert fresh.exists()
        assert store.gc(min_age_s=0.0) == 1

    def test_gc_on_missing_store_is_a_noop(self, tmp_path):
        assert ArtifactStore(tmp_path / "nowhere").gc() == 0

    def test_cli_store_gc(self, tmp_path, capsys):
        from repro.engine.cli import main

        store = ArtifactStore(tmp_path / "store")
        store.root.mkdir(parents=True, exist_ok=True)
        (store.root / (".%s-dead0" % ("e" * 12))).mkdir()
        assert main(["store", "gc", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 orphaned staging dirs" in out
