"""Streaming accumulators: numerical equivalence with one-shot NumPy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assess import (
    AssessmentChunk,
    ClassEnergyStats,
    FixedVsRandomAccumulator,
    SelectionBitAccumulator,
    StreamingMoments,
)

CHUNK_SIZES = (1, 7, 64, 997, 4096)


def _stream(values: np.ndarray, chunk_size: int) -> StreamingMoments:
    moments = StreamingMoments()
    for start in range(0, values.shape[0], chunk_size):
        moments.update(values[start:start + chunk_size])
    return moments


@pytest.fixture(scope="module")
def noisy_values() -> np.ndarray:
    rng = np.random.default_rng(42)
    # Energy-like magnitudes with structure: lognormal around 1e-12.
    return 1e-12 * np.exp(rng.normal(0.0, 0.3, size=5000))


class TestStreamingMoments:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_matches_one_shot_numpy(self, noisy_values, chunk_size):
        moments = _stream(noisy_values, chunk_size)
        assert moments.count == noisy_values.shape[0]
        assert np.isclose(moments.mean, noisy_values.mean(), rtol=1e-10, atol=0.0)
        assert np.isclose(
            moments.variance, noisy_values.var(ddof=1), rtol=1e-10, atol=0.0
        )
        centred = noisy_values - noisy_values.mean()
        assert np.isclose(moments.m2, np.sum(centred**2), rtol=1e-10, atol=0.0)
        assert np.isclose(moments.m3, np.sum(centred**3), rtol=1e-8, atol=1e-45)
        assert np.isclose(moments.m4, np.sum(centred**4), rtol=1e-10, atol=0.0)
        assert moments.minimum == noisy_values.min()
        assert moments.maximum == noisy_values.max()

    def test_chunkings_agree_with_each_other(self, noisy_values):
        reference = _stream(noisy_values, noisy_values.shape[0])
        for chunk_size in CHUNK_SIZES:
            streamed = _stream(noisy_values, chunk_size)
            assert np.isclose(streamed.mean, reference.mean, rtol=1e-12)
            assert np.isclose(streamed.m2, reference.m2, rtol=1e-10)
            assert np.isclose(streamed.m4, reference.m4, rtol=1e-10)

    def test_merge_equals_single_accumulator(self, noisy_values):
        left = _stream(noisy_values[:1234], 100)
        right = _stream(noisy_values[1234:], 321)
        left.merge(right)
        whole = _stream(noisy_values, 1000)
        assert left.count == whole.count
        assert np.isclose(left.mean, whole.mean, rtol=1e-12)
        assert np.isclose(left.m2, whole.m2, rtol=1e-10)
        assert np.isclose(left.m4, whole.m4, rtol=1e-10)
        assert left.minimum == whole.minimum
        assert left.maximum == whole.maximum

    def test_empty_updates_are_ignored(self):
        moments = StreamingMoments()
        moments.update(np.array([]))
        assert moments.count == 0
        moments.update(np.array([2.0, 4.0]))
        moments.update(np.array([]))
        assert moments.count == 2
        assert moments.mean == 3.0

    def test_central_moments_and_figures_of_merit(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        moments = _stream(values, 2)
        assert np.isclose(moments.central_moment(2), values.var())
        assert moments.central_moment(1) == 0.0
        assert np.isclose(moments.nsd, values.std(ddof=1) / values.mean())
        assert np.isclose(moments.ned, (4.0 - 1.0) / 4.0)
        with pytest.raises(ValueError):
            moments.central_moment(5)

    def test_variance_needs_two_samples(self):
        moments = StreamingMoments()
        moments.update(np.array([1.0]))
        assert np.isnan(moments.variance)


class TestFixedVsRandomAccumulator:
    def test_splits_by_label(self, noisy_values):
        rng = np.random.default_rng(3)
        labels = rng.random(noisy_values.shape[0]) < 0.4
        accumulator = FixedVsRandomAccumulator()
        for start in range(0, noisy_values.shape[0], 512):
            stop = start + 512
            accumulator.update(noisy_values[start:stop], labels[start:stop])
        assert accumulator.fixed.count == int(labels.sum())
        assert accumulator.random.count == int((~labels).sum())
        assert accumulator.count == noisy_values.shape[0]
        assert np.isclose(
            accumulator.fixed.mean, noisy_values[labels].mean(), rtol=1e-10
        )
        assert np.isclose(
            accumulator.random.mean, noisy_values[~labels].mean(), rtol=1e-10
        )

    def test_mismatched_lengths_raise(self):
        accumulator = FixedVsRandomAccumulator()
        with pytest.raises(ValueError):
            accumulator.update(np.ones(3), np.array([True, False]))


class TestSelectionBitAccumulator:
    def test_per_bit_partitions(self):
        rng = np.random.default_rng(9)
        plaintexts = rng.integers(0, 16, size=1000)
        energies = rng.normal(1.0, 0.1, size=1000) + 0.05 * (plaintexts & 1)
        accumulator = SelectionBitAccumulator(bits=4)
        for start in range(0, 1000, 173):
            stop = start + 173
            accumulator.update(plaintexts[start:stop], energies[start:stop])
        for bit in range(4):
            ones = ((plaintexts >> bit) & 1).astype(bool)
            assert accumulator[bit].fixed.count == int(ones.sum())
            assert np.isclose(
                accumulator[bit].fixed.mean, energies[ones].mean(), rtol=1e-10
            )

    def test_selector_maps_intermediate_values(self):
        table = np.array([3, 0, 2, 1], dtype=np.int64)
        accumulator = SelectionBitAccumulator(
            bits=2, selector=lambda plaintexts: table[plaintexts]
        )
        plaintexts = np.array([0, 1, 2, 3, 0, 2])
        energies = np.arange(6, dtype=float)
        accumulator.update(plaintexts, energies)
        expected_bit0 = (table[plaintexts] & 1).astype(bool)
        assert accumulator[0].fixed.count == int(expected_bit0.sum())

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectionBitAccumulator(bits=0)


class TestClassEnergyStats:
    def test_snapshot_and_no_verdict(self):
        rng = np.random.default_rng(21)
        energies = rng.normal(5.0, 0.5, size=400)
        labels = rng.random(400) < 0.5
        method = ClassEnergyStats()
        method.update(AssessmentChunk(np.zeros(400, dtype=np.int64), labels, energies))
        result = method.finalize()
        assert result.leaks is None  # descriptive, no pass/fail verdict
        assert np.isclose(result.fixed["mean"], energies[labels].mean(), rtol=1e-10)
        assert result.to_dict()["method"] == "stats"
        rows = result.summary_rows()
        assert len(rows) == 2 and rows[0][0] == "stats"


class TestMergeProperties:
    """Deterministic merge behaviour (the map-reduce backbone)."""

    def test_two_class_merge_matches_single_stream(self, noisy_values):
        labels = np.random.default_rng(7).random(noisy_values.shape[0]) < 0.4
        whole = FixedVsRandomAccumulator()
        whole.update(noisy_values, labels)
        left, right = FixedVsRandomAccumulator(), FixedVsRandomAccumulator()
        split = noisy_values.shape[0] // 3
        left.update(noisy_values[:split], labels[:split])
        right.update(noisy_values[split:], labels[split:])
        left.merge(right)
        for merged, reference in zip(left.classes(), whole.classes()):
            assert merged.count == reference.count
            assert np.isclose(merged.mean, reference.mean, rtol=1e-10, atol=0.0)
            assert np.isclose(merged.m2, reference.m2, rtol=1e-10, atol=0.0)

    def test_selection_bit_merge_requires_matching_widths(self):
        with pytest.raises(ValueError):
            SelectionBitAccumulator(bits=2).merge(SelectionBitAccumulator(bits=3))

    def test_merge_into_empty_accumulator_copies_state(self, noisy_values):
        source = StreamingMoments()
        source.update(noisy_values)
        target = StreamingMoments()
        target.merge(source)
        assert target.count == source.count
        assert target.mean == source.mean
        assert target.m4 == source.m4


# --------------------------------------------------------------------------
# Property-based: merge() is associative and order-insensitive over random
# shard splits -- the correctness backbone of the engine's map-reduce
# (`repro.engine.runner` merges per-shard accumulators in shard order, but
# any order must agree within float round-off).

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

PROPERTY_SETTINGS = dict(max_examples=60, deadline=None)


@st.composite
def sharded_values(draw):
    """Energy-like values plus a random partition into 1..5 shards."""
    count = draw(st.integers(min_value=4, max_value=200))
    scale = draw(st.sampled_from([1.0, 1e-12, 1e6]))
    values = draw(
        st.lists(
            st.floats(
                min_value=0.1, max_value=10.0, allow_nan=False, allow_infinity=False
            ),
            min_size=count,
            max_size=count,
        )
    )
    values = scale * np.asarray(values, dtype=float)
    shard_count = draw(st.integers(min_value=1, max_value=5))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=count),
                min_size=shard_count - 1,
                max_size=shard_count - 1,
            )
        )
    )
    shards = np.split(values, cuts)
    order = draw(st.permutations(range(len(shards))))
    return values, shards, list(order)


def _merge_all(accumulators):
    total = StreamingMoments()
    for accumulator in accumulators:
        total.merge(accumulator)
    return total


def _close(a, b):
    return np.isclose(a, b, rtol=1e-10, atol=1e-30)


class TestMergeIsAssociativeAndOrderInsensitive:
    @given(sharded_values())
    @settings(**PROPERTY_SETTINGS)
    def test_random_shard_splits_reduce_to_the_one_shot_moments(self, case):
        values, shards, order = case
        reference = StreamingMoments()
        reference.update(values)

        per_shard = []
        for shard in shards:
            moments = StreamingMoments()
            moments.update(shard)
            per_shard.append(moments)

        # In-order reduce (what the engine does) ...
        in_order = _merge_all(per_shard)
        # ... a shuffled reduce (order-insensitivity) ...
        shuffled = _merge_all([per_shard[index] for index in order])
        # ... and a pairwise tree reduce (associativity).
        tree = [per_shard[index] for index in order]
        while len(tree) > 1:
            merged = StreamingMoments()
            merged.merge(tree[0])
            merged.merge(tree[1])
            tree = [merged] + tree[2:]
        tree_total = tree[0]

        for candidate in (in_order, shuffled, tree_total):
            assert candidate.count == reference.count
            assert _close(candidate.mean, reference.mean)
            assert _close(candidate.m2, reference.m2)
            assert _close(candidate.m3, reference.m3)
            assert _close(candidate.m4, reference.m4)
            assert candidate.minimum == reference.minimum
            assert candidate.maximum == reference.maximum

    @given(sharded_values())
    @settings(**PROPERTY_SETTINGS)
    def test_two_class_shard_merge_matches_single_accumulator(self, case):
        values, shards, order = case
        labels = (np.arange(values.shape[0]) % 3) == 0  # deterministic classes

        reference = FixedVsRandomAccumulator()
        reference.update(values, labels)

        per_shard = []
        start = 0
        for shard in shards:
            accumulator = FixedVsRandomAccumulator()
            accumulator.update(shard, labels[start:start + shard.shape[0]])
            per_shard.append(accumulator)
            start += shard.shape[0]

        total = FixedVsRandomAccumulator()
        for index in order:
            total.merge(per_shard[index])

        for merged, expected in zip(total.classes(), reference.classes()):
            assert merged.count == expected.count
            if expected.count:
                assert _close(merged.mean, expected.mean)
                assert _close(merged.m2, expected.m2)
                assert _close(merged.m4, expected.m4)
