"""Unit tests for the verification layer."""

import pytest

from repro.boolexpr import parse
from repro.core import (
    VerificationError,
    assert_valid_fc_gate,
    check_constant_evaluation_depth,
    check_device_count_preserved,
    check_differential_function,
    check_fully_connected,
    check_memory_effect_free,
    check_no_early_propagation,
    enhance_fc_dpdn,
    synthesize_fc_dpdn,
    verify_gate,
)
from repro.network import DifferentialPullDownNetwork, Literal, build_dpdn_from_branches, build_genuine_dpdn


class TestDifferentialFunction:
    def test_correct_gate_passes(self, and2, and2_fc):
        assert check_differential_function(and2_fc, and2).passed

    def test_wrong_function_detected(self, and2_fc):
        result = check_differential_function(and2_fc, parse("A | B"))
        assert not result.passed
        assert result.counterexamples

    def test_non_differential_network_detected(self):
        broken = build_dpdn_from_branches(parse("A & B"), parse("~A & ~B"))
        result = check_differential_function(broken)
        assert not result.passed
        assert "neither branch conducts" in " ".join(result.counterexamples)

    def test_both_branches_conducting_detected(self):
        dpdn = DifferentialPullDownNetwork("short", function=parse("A"))
        dpdn.add_transistor(Literal("A", True), "X", "Z")
        dpdn.add_transistor(Literal("A", True), "Y", "Z")
        result = check_differential_function(dpdn)
        assert not result.passed

    def test_without_expected_function_only_consistency_is_checked(self, and2_fc):
        unannotated = and2_fc.copy()
        unannotated.function = None
        assert check_differential_function(unannotated).passed


class TestStructuralChecks:
    def test_fully_connected_pass_and_fail(self, and2_fc, and2_genuine):
        assert check_fully_connected(and2_fc).passed
        failure = check_fully_connected(and2_genuine)
        assert not failure.passed
        assert "floating" in failure.details or failure.counterexamples

    def test_memory_effect_mirrors_full_connectivity(self, and2_fc, and2_genuine):
        assert check_memory_effect_free(and2_fc).passed
        assert not check_memory_effect_free(and2_genuine).passed

    def test_constant_depth(self, and2_fc):
        assert not check_constant_evaluation_depth(and2_fc).passed
        assert check_constant_evaluation_depth(enhance_fc_dpdn(and2_fc)).passed

    def test_early_propagation(self, and2_fc):
        assert not check_no_early_propagation(and2_fc).passed
        assert check_no_early_propagation(enhance_fc_dpdn(and2_fc)).passed

    def test_device_count_check(self, and2_fc, and2_genuine):
        assert check_device_count_preserved(and2_genuine, and2_fc).passed
        bigger = enhance_fc_dpdn(and2_fc)
        assert not check_device_count_preserved(and2_genuine, bigger).passed


class TestAggregateReport:
    def test_report_structure(self, and2, and2_fc):
        report = verify_gate(and2_fc, and2)
        assert report.passed
        assert {check.name for check in report.checks} == {
            "differential_function",
            "fully_connected",
            "memory_effect_free",
        }
        assert report.check("fully_connected").passed
        with pytest.raises(KeyError):
            report.check("nonexistent")

    def test_report_describe_contains_status(self, and2, and2_genuine):
        report = verify_gate(and2_genuine, and2)
        text = report.describe()
        assert "PASS" in text and "FAIL" in text

    def test_optional_checks_are_included_on_request(self, and2, and2_fc):
        report = verify_gate(
            and2_fc, and2, require_constant_depth=True, require_no_early_propagation=True
        )
        names = {check.name for check in report.checks}
        assert "constant_evaluation_depth" in names
        assert "no_early_propagation" in names

    def test_assert_valid_fc_gate(self, and2_fc, and2_genuine):
        assert_valid_fc_gate(and2_fc)
        with pytest.raises(VerificationError):
            assert_valid_fc_gate(and2_genuine)
