"""Integration tests mirroring each figure of the paper (fast versions).

The benchmarks under ``benchmarks/`` regenerate the full tables; these
tests assert the *shape* of every claim end-to-end so a plain ``pytest``
run already validates the reproduction.
"""

import pytest

from repro.boolexpr import parse
from repro.core import (
    build_cell,
    CellSpec,
    enhance_fc_dpdn,
    synthesize_fc_dpdn,
    transform_to_fc,
    verify_gate,
)
from repro.electrical import EventEnergyModel, generic_180nm
from repro.network import (
    build_genuine_dpdn,
    complementary_assignments,
    evaluation_depths,
    floating_internal_nodes,
    is_fully_connected,
)
from repro.power import energy_statistics
from repro.sabl import CVSLGate, SABLGate


@pytest.fixture(scope="module")
def and2():
    return parse("A & B")


@pytest.fixture(scope="module")
def and2_genuine(and2):
    return build_genuine_dpdn(and2, name="AND2_genuine")


@pytest.fixture(scope="module")
def and2_fc(and2):
    return synthesize_fc_dpdn(and2, name="AND2_fc")


class TestFig2Connectivity:
    """Fig. 2: genuine vs fully connected AND-NAND."""

    def test_genuine_network_has_a_floating_node_for_00(self, and2_genuine):
        assert floating_internal_nodes(and2_genuine, {"A": False, "B": False})

    def test_fully_connected_network_never_floats(self, and2_fc):
        for event in complementary_assignments(["A", "B"]):
            assert not floating_internal_nodes(and2_fc, event)

    def test_repositioning_one_transistor_fixes_the_genuine_network(self, and2, and2_genuine):
        transformed = transform_to_fc(and2_genuine)
        assert is_fully_connected(transformed)
        assert transformed.device_count() == and2_genuine.device_count()
        assert verify_gate(transformed, and2).passed


class TestFig3TransientWaveforms:
    """Fig. 3: supply current and outputs independent of the input event."""

    @pytest.fixture(scope="class")
    def results(self):
        technology = generic_180nm().scaled(time_step=10e-12)
        gate = SABLGate(synthesize_fc_dpdn(parse("A & B")), technology)
        return {
            "01": gate.transient([{"A": False, "B": True}] * 2),
            "11": gate.transient([{"A": True, "B": True}] * 2),
        }

    def test_steady_state_supply_charge_is_event_independent(self, results):
        assert results["01"].cycle_charges[-1] == pytest.approx(
            results["11"].cycle_charges[-1], rel=0.02
        )

    def test_supply_current_waveform_shape_is_event_independent(self, results):
        difference = results["01"].supply_current().rms_difference(
            results["11"].supply_current()
        )
        assert difference < 0.05 * results["11"].supply_current().peak()


class TestFig4DischargedCapacitance:
    """Fig. 4: total discharged capacitance equal for every input event."""

    def test_fc_capacitance_constant_and_genuine_varies(self, and2_fc, and2_genuine):
        technology = generic_180nm()
        fc_model = EventEnergyModel(and2_fc, technology)
        genuine_model = EventEnergyModel(and2_genuine, technology)
        fc_caps = {
            round(fc_model.discharged_capacitance(event) * 1e18)
            for event in complementary_assignments(["A", "B"])
        }
        genuine_caps = {
            round(genuine_model.discharged_capacitance(event) * 1e18)
            for event in complementary_assignments(["A", "B"])
        }
        assert len(fc_caps) == 1
        assert len(genuine_caps) > 1


class TestFig5DesignExample:
    """Fig. 5: the OAI22 network is fully connected after either method."""

    def test_both_methods_produce_valid_fully_connected_networks(self):
        function = parse("((A | B) & (C | D))'")
        genuine = build_genuine_dpdn(function)
        by_transform = transform_to_fc(genuine)
        by_synthesis = synthesize_fc_dpdn(function)
        for network in (by_transform, by_synthesis):
            assert is_fully_connected(network)
            assert verify_gate(network, function).passed
            assert network.device_count() == genuine.device_count()


class TestFig6EnhancedNetwork:
    """Fig. 6: pass-gate insertion gives constant depth, no early propagation."""

    def test_enhanced_and_nand(self, and2, and2_fc):
        enhanced = enhance_fc_dpdn(and2_fc)
        assert enhanced.device_count() == and2_fc.device_count() + 2
        assert set(evaluation_depths(enhanced).values()) == {2}
        report = verify_gate(
            enhanced, and2, require_constant_depth=True, require_no_early_propagation=True
        )
        assert report.passed


class TestInTextCvslVariation:
    """Section 2: CVSL AND-NAND power variation vs constant SABL-FC power."""

    def test_cvsl_varies_and_fc_does_not(self, and2_genuine, and2_fc):
        # A small output load makes the internal-node contribution visible,
        # as in the paper's discussion of the memory effect.
        technology = generic_180nm()
        cvsl = CVSLGate(and2_genuine, technology, output_load=1e-15)
        sabl = SABLGate(and2_fc, technology, output_load=1e-15)
        cvsl_stats = energy_statistics([r.energy for r in cvsl.energy_sweep()])
        sabl_stats = energy_statistics([r.energy for r in sabl.energy_sweep()])
        assert cvsl_stats.ned > 0.10
        assert sabl_stats.ned == pytest.approx(0.0, abs=1e-12)


class TestLibraryFlowEndToEnd:
    def test_building_a_paper_cell_end_to_end(self):
        cell = build_cell(CellSpec("OAI22", "((A | B) & (C | D))'"))
        assert is_fully_connected(cell.fully_connected)
        assert cell.transformed is not None
        assert cell.enhanced.device_count() >= cell.fully_connected.device_count()
