"""Unit tests for the power-analysis substrate (crypto, metrics, traces, attacks)."""

import numpy as np
import pytest

from repro.power import (
    AES_SBOX,
    PRESENT_SBOX,
    acquire_circuit_traces,
    acquire_model_traces,
    bits_of,
    build_sbox_circuit,
    cpa_correlation,
    dpa_difference_of_means,
    energy_statistics,
    from_bits,
    hamming_weight,
    keyed_sbox_expressions,
    measurements_to_disclosure,
    normalized_energy_deviation,
    normalized_std_deviation,
    present_sbox_lookup,
    profiled_cpa,
    sbox_output_expressions,
    simulated_energy_predictor,
)
from repro.power.trace import TraceSet


class TestCrypto:
    def test_sboxes_are_permutations(self):
        assert sorted(PRESENT_SBOX) == list(range(16))
        assert sorted(AES_SBOX) == list(range(256))

    def test_hamming_weight(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(0xF) == 4
        assert hamming_weight(0xA5) == 4

    def test_bit_conversions_round_trip(self):
        for value in range(16):
            assert from_bits(bits_of(value, 4)) == value

    @pytest.mark.parametrize("width", [9, 16, 24, 63, 64, 80])
    def test_bit_conversions_round_trip_wide(self, width):
        # Regression: widths beyond 8 (scenario round registers, the
        # PRESENT-80 key schedule) must round-trip exactly.
        for value in (0, 1, (1 << width) - 1, (1 << width) // 3, 1 << (width - 1)):
            bits = bits_of(value, width)
            assert len(bits) == width
            assert from_bits(bits) == value

    def test_bits_of_validates_width(self):
        # Regression: values wider than ``width`` used to truncate
        # silently; now they are rejected.
        with pytest.raises(ValueError, match="does not fit"):
            bits_of(16, 4)
        with pytest.raises(ValueError, match="does not fit"):
            bits_of(1 << 12, 12)
        with pytest.raises(ValueError, match="does not fit"):
            bits_of(-1, 4)
        with pytest.raises(ValueError, match="width"):
            bits_of(0, -1)
        assert bits_of(0, 0) == []

    def test_present_lookup_bounds(self):
        assert present_sbox_lookup(0) == 0xC
        with pytest.raises(ValueError):
            present_sbox_lookup(16)

    def test_sbox_expressions_match_table(self):
        expressions = sbox_output_expressions(PRESENT_SBOX, 4, 4)
        for value in range(16):
            assignment = {f"p{i}": bit for i, bit in enumerate(bits_of(value, 4))}
            reconstructed = sum(
                int(expressions[f"y{bit}"].evaluate(assignment)) << bit for bit in range(4)
            )
            assert reconstructed == PRESENT_SBOX[value]

    def test_keyed_expressions_fold_the_key(self):
        key = 0x9
        expressions = keyed_sbox_expressions(key)
        for value in range(16):
            assignment = {f"p{i}": bit for i, bit in enumerate(bits_of(value, 4))}
            reconstructed = sum(
                int(expressions[f"y{bit}"].evaluate(assignment)) << bit for bit in range(4)
            )
            assert reconstructed == PRESENT_SBOX[value ^ key]

    def test_keyed_expressions_reject_out_of_range_key(self):
        with pytest.raises(ValueError):
            keyed_sbox_expressions(16)

    def test_sbox_expression_size_validation(self):
        with pytest.raises(ValueError):
            sbox_output_expressions(PRESENT_SBOX, 3, 4)


class TestMetrics:
    def test_constant_series_has_zero_deviation(self):
        stats = energy_statistics([5.0, 5.0, 5.0])
        assert stats.ned == 0.0 and stats.nsd == 0.0

    def test_known_values(self):
        stats = energy_statistics([1.0, 2.0])
        assert stats.ned == pytest.approx(0.5)
        assert stats.mean == pytest.approx(1.5)
        assert normalized_energy_deviation([1.0, 2.0]) == pytest.approx(0.5)
        assert normalized_std_deviation([1.0, 1.0]) == 0.0

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            energy_statistics([])

    def test_describe_contains_percentages(self):
        assert "%" in energy_statistics([1e-15, 2e-15]).describe()


class TestTraceAcquisition:
    def test_model_traces_shape_and_determinism(self):
        first = acquire_model_traces(key=0x3, trace_count=50, seed=1)
        second = acquire_model_traces(key=0x3, trace_count=50, seed=1)
        assert len(first) == 50
        assert np.array_equal(first.traces, second.traces)

    def test_noise_changes_traces(self):
        clean = acquire_model_traces(key=0x3, trace_count=50, noise_std=0.0, seed=1)
        noisy = acquire_model_traces(key=0x3, trace_count=50, noise_std=0.5, seed=1)
        assert not np.array_equal(clean.traces, noisy.traces)

    def test_subset(self):
        traces = acquire_model_traces(key=0x3, trace_count=50, seed=1)
        subset = traces.subset(10)
        assert len(subset) == 10 and subset.key == traces.key

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TraceSet(plaintexts=np.arange(3), traces=np.zeros(4), key=0)

    def test_circuit_traces_fc_are_nearly_constant(self):
        circuit = build_sbox_circuit(0x4, "fc", max_fanin=3)
        traces = acquire_circuit_traces(circuit, 0x4, 40, noise_std=0.0, seed=3)
        assert normalized_std_deviation(traces.traces.tolist()) < 1e-9

    def test_circuit_traces_genuine_vary(self):
        circuit = build_sbox_circuit(0x4, "genuine", max_fanin=3)
        traces = acquire_circuit_traces(circuit, 0x4, 40, noise_std=0.0, seed=3)
        assert normalized_std_deviation(traces.traces.tolist()) > 1e-4


class TestAttacks:
    def test_cpa_recovers_key_from_hamming_weight_model(self):
        traces = acquire_model_traces(key=0xB, trace_count=300, noise_std=0.25, seed=11)
        result = cpa_correlation(traces, PRESENT_SBOX)
        assert result.succeeded
        assert result.correct_key_rank == 0

    def test_dom_recovers_key_from_single_bit_leakage(self):
        # Kocher-style DoM targets one bit; build traces whose leakage is
        # exactly that bit of S(p XOR key) plus noise.  (With a full
        # Hamming-weight leakage the 4-bit PRESENT S-box produces exact
        # ghost-peak ties, so single-bit leakage is the well-posed case.)
        key, bit = 0x7, 2
        rng = np.random.default_rng(5)
        plaintexts = rng.integers(0, 16, size=800)
        leakage = np.array(
            [(PRESENT_SBOX[int(p) ^ key] >> bit) & 1 for p in plaintexts], dtype=float
        )
        traces = TraceSet(
            plaintexts=plaintexts,
            traces=leakage + rng.normal(0.0, 0.25, size=len(plaintexts)),
            key=key,
        )
        result = dpa_difference_of_means(traces, PRESENT_SBOX, target_bit=bit)
        assert result.succeeded

    def test_attack_result_accessors(self):
        traces = acquire_model_traces(key=0x2, trace_count=200, seed=9)
        result = cpa_correlation(traces, PRESENT_SBOX)
        assert 0 <= result.best_guess < 16
        assert len(result.scores) == 16
        assert result.margin() >= 0.0

    def test_measurements_to_disclosure_on_easy_target(self):
        traces = acquire_model_traces(key=0xD, trace_count=400, noise_std=0.2, seed=21)
        mtd = measurements_to_disclosure(traces, PRESENT_SBOX)
        assert mtd is not None and mtd <= 400

    def test_measurements_to_disclosure_none_for_pure_noise(self):
        rng = np.random.default_rng(0)
        traces = TraceSet(
            plaintexts=rng.integers(0, 16, 200), traces=rng.normal(0, 1, 200), key=0x6
        )
        assert measurements_to_disclosure(traces, PRESENT_SBOX) is None


@pytest.mark.slow
class TestProfiledAttackOnCircuits:
    def test_profiled_cpa_breaks_genuine_but_not_fc(self):
        key = 0xB
        genuine = build_sbox_circuit(key, "genuine", max_fanin=3)
        protected = build_sbox_circuit(key, "fc", max_fanin=3)
        traces_genuine = acquire_circuit_traces(genuine, key, 96, noise_std=0.002, seed=7)
        traces_fc = acquire_circuit_traces(protected, key, 96, noise_std=0.002, seed=7)
        predictor = simulated_energy_predictor("genuine", max_fanin=3)
        attack_genuine = profiled_cpa(traces_genuine, predictor)
        attack_fc = profiled_cpa(traces_fc, predictor)
        assert attack_genuine.succeeded
        assert max(attack_genuine.scores) > 0.6
        assert max(attack_fc.scores) < 0.5
