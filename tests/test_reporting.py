"""Unit tests for the reporting helpers."""

import numpy as np
import pytest

from repro.electrical import Trace
from repro.reporting import (
    ExperimentResult,
    ascii_plot,
    ascii_waveform,
    format_experiment_results,
    format_table,
)


class TestTables:
    def test_alignment_and_content(self):
        text = format_table(
            ["cell", "devices"], [["AND2", 4], ["OAI22", 8]], title="Library"
        )
        assert "Library" in text
        assert "AND2" in text and "OAI22" in text
        lines = text.splitlines()
        header_index = next(i for i, line in enumerate(lines) if line.startswith("cell"))
        assert set(lines[header_index + 1]) <= {"-", " "}

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_wide_cells_expand_columns(self):
        text = format_table(["name"], [["a-very-long-cell-name"]])
        assert "a-very-long-cell-name" in text


class TestAsciiPlots:
    def test_plot_contains_extrema(self):
        text = ascii_plot([0.0, 1.0, 2.0, 3.0], label="ramp")
        assert "ramp" in text and "max" in text and "min" in text
        assert "*" in text

    def test_long_series_is_downsampled(self):
        text = ascii_plot(np.sin(np.linspace(0, 10, 5000)), width=60)
        longest_line = max(len(line) for line in text.splitlines())
        assert longest_line <= 70

    def test_empty_series(self):
        assert "empty" in ascii_plot([])

    def test_waveform_wrapper(self):
        trace = Trace("i_VDD", np.linspace(0, 1e-9, 20), np.linspace(0, 1e-6, 20))
        text = ascii_waveform(trace)
        assert "i_VDD" in text and "ns" in text


class TestExperimentResults:
    def test_describe_and_format(self):
        result = ExperimentResult(
            experiment_id="fig4",
            description="discharged capacitance per input event",
            paper_value="19.32 fF vs 19.38 fF",
            measured_value="20.20 fF vs 20.20 fF",
            matches_shape=True,
            notes="generic technology card",
        )
        text = result.describe()
        assert "fig4" in text and "shape reproduced" in text and "generic" in text
        combined = format_experiment_results([result, result])
        assert combined.count("fig4") == 2

    def test_mismatch_is_flagged(self):
        result = ExperimentResult("x", "d", "1", "2", matches_shape=False)
        assert "MISMATCH" in result.describe()
