"""Observability across the flow and engine: parity, bit-identity, CLI.

The cardinal rule these tests pin: observation never changes the
result.  A traced campaign must produce bit-identical traces and
verdicts to an untraced one, serial and process executions must emit
the same logical event stream, and the obs config must stay out of the
artifact-store keys so traced and untraced runs share cache entries.
"""

from __future__ import annotations

import json
from collections import Counter as Multiset

import numpy as np

from repro.engine import run_sweep
from repro.engine.cli import main
from repro.flow import (
    AssessmentConfig,
    CampaignConfig,
    DesignFlow,
    ExecutionConfig,
    FlowConfig,
    ObservabilityConfig,
)
from repro.obs import BufferSink, Observer, summarize_trace_file, use_observer

TRACES = 48
SHARD = 16

#: Activates obs without touching the filesystem or the console.
SILENT_OBS = ObservabilityConfig(sinks=("null",))


def _flow(execution, obs=SILENT_OBS, **campaign):
    campaign.setdefault("trace_count", TRACES)
    campaign.setdefault("noise_std", 0.01)
    config = FlowConfig(
        name="obs_sbox",
        campaign=CampaignConfig(**campaign),
        execution=execution,
        obs=obs,
    )
    return DesignFlow.sbox(0xB, config=config)


def _run_buffered(execution, **campaign):
    buffer = []
    observer = Observer((BufferSink(buffer),))
    with use_observer(observer):
        flow = _flow(execution, **campaign)
        traces = flow.traces()
    return traces, buffer


class TestBitIdentity:
    def test_traced_run_is_bit_identical_to_untraced(self):
        untraced = _flow(
            ExecutionConfig(shard_size=SHARD), obs=ObservabilityConfig()
        )
        traced, events = _run_buffered(ExecutionConfig(shard_size=SHARD))
        assert events, "the traced run emitted nothing"
        assert np.array_equal(untraced.traces().traces, traced.traces)
        assert np.array_equal(untraced.traces().plaintexts, traced.plaintexts)

    def test_traced_parallel_run_is_bit_identical_too(self):
        untraced = _flow(
            ExecutionConfig(workers=2, shard_size=SHARD), obs=ObservabilityConfig()
        )
        traced, events = _run_buffered(ExecutionConfig(workers=2, shard_size=SHARD))
        assert any(e["name"] == "shard.traces" for e in events)
        assert np.array_equal(untraced.traces().traces, traced.traces)

    def test_traced_verdict_matches_untraced(self):
        def verdict(obs):
            config = FlowConfig(
                name="obs_verdict",
                campaign=CampaignConfig(key=0xB, trace_count=64),
                assessment=AssessmentConfig(
                    enabled=True, traces_per_class=200, chunk_size=128
                ),
                execution=ExecutionConfig(workers=2, shard_size=128),
                obs=obs,
            )
            flow = DesignFlow.sbox(config=config)
            details = flow.run(["assessment"])["assessment"].details
            return {
                key: value
                for key, value in details.items()
                if key == "leaks" or key.endswith("_max_abs_t")
            }

        buffer = []
        with use_observer(Observer((BufferSink(buffer),))):
            traced = verdict(SILENT_OBS)
        untraced = verdict(ObservabilityConfig())
        assert traced == untraced
        assert any(e["name"] == "shard.assessment" for e in buffer)


class TestEventParity:
    def test_serial_and_process_emit_the_same_logical_stream(self):
        _, serial = _run_buffered(ExecutionConfig(shard_size=SHARD))
        _, parallel = _run_buffered(ExecutionConfig(workers=2, shard_size=SHARD))

        def shard_shape(events):
            # stage.* spans differ legitimately: worker processes rebuild
            # the flow, re-running the circuit stages the serial path
            # computed once.  The sharded work itself must match.
            return Multiset(
                (e["kind"], e["name"])
                for e in events
                if e["name"].startswith(("shard.", "engine."))
            )

        assert shard_shape(serial) == shard_shape(parallel)

    def test_worker_events_carry_worker_pids_or_parent(self):
        _, events = _run_buffered(ExecutionConfig(workers=2, shard_size=SHARD))
        spans = [e for e in events if e["name"] == "shard.traces"]
        assert len(spans) == 2 * 3  # start+end per shard
        # every buffered worker event validates against the schema
        from repro.obs import validate_event

        for event in events:
            validate_event(event)

    def test_kernel_metrics_flow_back_from_workers(self):
        _, events = _run_buffered(
            ExecutionConfig(workers=2, shard_size=SHARD), simulator="bitslice"
        )
        names = {e["name"] for e in events}
        assert "kernel.traces_per_s" in names
        assert "executor.map" in {e["name"] for e in events if e["kind"] == "span.end"}


class TestStoreStats:
    def test_counters_and_stats_without_obs(self, tmp_path):
        execution = ExecutionConfig(shard_size=SHARD, store=str(tmp_path / "store"))
        flow = _flow(execution, obs=ObservabilityConfig())
        flow.traces()
        store = flow._artifact_store()
        assert store.misses > 0 and store.writes > 0
        stats = store.stats()
        assert stats["entries"] > 0 and stats["bytes"] > 0
        assert stats["writes"] == store.writes

        rerun = _flow(execution, obs=ObservabilityConfig())
        rerun.traces()
        assert rerun._artifact_store().hits > 0

    def test_obs_config_is_excluded_from_store_keys(self, tmp_path):
        execution = ExecutionConfig(shard_size=SHARD, store=str(tmp_path / "store"))
        _flow(execution, obs=ObservabilityConfig()).traces()

        buffer = []
        with use_observer(Observer((BufferSink(buffer),))):
            _flow(execution).traces()
        hits = [e for e in buffer if e["name"] == "store.hit"]
        misses = [e for e in buffer if e["name"] == "store.miss"]
        assert hits and not misses


class TestSweepTracing:
    def test_sweep_trace_file_covers_every_cell(self, tmp_path):
        trace = tmp_path / "events.jsonl"
        base = FlowConfig(
            name="swp",
            campaign=CampaignConfig(trace_count=32),
            execution=ExecutionConfig(store=str(tmp_path / "store")),
            obs=ObservabilityConfig(trace=str(trace)),
        )
        result = run_sweep(base, {"gate_style": ["sabl", "cvsl"]}, workers=2)
        assert len(result.cells) == 2

        summary = summarize_trace_file(str(trace))
        assert summary.errors == 0
        assert set(summary.cells) == {
            "swp/gate_style=sabl", "swp/gate_style=cvsl"
        }
        assert summary.spans["sweep"].count == 1
        assert summary.counters["sweep.cells_done"] == 2.0
        assert any(name.startswith("stage.") for name in summary.spans)

    def test_sweep_results_unchanged_by_tracing(self, tmp_path):
        def cells(obs, sub):
            base = FlowConfig(
                name="swp",
                campaign=CampaignConfig(trace_count=32),
                execution=ExecutionConfig(store=str(tmp_path / sub)),
                obs=obs,
            )
            return run_sweep(
                base, {"campaign.noise_std": [0.0, 0.02]}, workers=2
            ).cells

        def comparable(record):
            # Strip wall-clock readings; everything else must match.
            clean = json.loads(json.dumps(record, default=str))
            for cell in ([clean] if isinstance(clean, dict) else clean):
                cell.pop("elapsed_s", None)
                for stage in cell.get("stages", {}).values():
                    stage.get("details", {}).pop("elapsed_s", None)
                    stage.pop("elapsed_s", None)
            return clean

        traced = cells(ObservabilityConfig(trace=str(tmp_path / "e.jsonl")), "s1")
        untraced = cells(ObservabilityConfig(), "s2")
        assert comparable(traced) == comparable(untraced)


class TestCli:
    def test_traced_run_and_summary(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        code = main(
            [
                "run", "--set", "trace_count=32",
                "--trace", str(trace), "--store", str(tmp_path / "store"),
            ]
        )
        assert code == 0
        assert trace.exists()
        summary = summarize_trace_file(str(trace))
        assert summary.errors == 0
        capsys.readouterr()

        code = main(["trace", "summary", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Trace summary:" in out and "Spans" in out

    def test_trace_summary_json(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        assert main(
            ["run", "--set", "trace_count=32", "--trace", str(trace),
             "--store", str(tmp_path / "store")]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace), "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0 and payload["spans"]

    def test_trace_summary_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "summary", str(bad)]) != 0

    def test_store_stats_subcommand(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(
            ["run", "--set", "trace_count=32", "--store", str(store)]
        ) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "bytes" in out

    def test_json_dash_keeps_stdout_clean(self, tmp_path, capsys):
        code = main(
            ["run", "--set", "trace_count=32", "--store", str(tmp_path / "store"),
             "--json", "-"]
        )
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout is nothing but the report
        assert "DesignFlow" in captured.err

    def test_quiet_silences_progress(self, tmp_path, capsys):
        code = main(
            ["run", "--set", "trace_count=32", "--store", str(tmp_path / "store"),
             "--progress", "-q"]
        )
        assert code == 0
        assert "repro:" not in capsys.readouterr().err

    def test_verbose_implies_progress(self, tmp_path, capsys):
        code = main(
            ["run", "--set", "trace_count=32",
             "--store", str(tmp_path / "store"), "-v"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "repro: stage." in err


class TestProfiledFlows:
    """Span profiling extends the cardinal rule: profiled == unprofiled."""

    #: Workers inherit profiling from the flow config they rebuild.
    PROFILED_OBS = ObservabilityConfig(sinks=("null",), profile=True)

    def _run_profiled(self, execution):
        buffer = []
        observer = Observer((BufferSink(buffer),), profile=True)
        with use_observer(observer):
            flow = _flow(execution, obs=self.PROFILED_OBS)
            traces = flow.traces()
        return traces, buffer

    def test_profiled_run_is_bit_identical_to_unprofiled(self):
        plain = _flow(ExecutionConfig(shard_size=SHARD), obs=ObservabilityConfig())
        traced, events = self._run_profiled(ExecutionConfig(shard_size=SHARD))
        assert any(e["kind"] == "span.profile" for e in events), (
            "the profiled run emitted no span.profile events"
        )
        assert np.array_equal(plain.traces().traces, traced.traces)
        assert np.array_equal(plain.traces().plaintexts, traced.plaintexts)

    def test_profiled_parallel_run_is_bit_identical_too(self):
        plain = _flow(
            ExecutionConfig(workers=2, shard_size=SHARD), obs=ObservabilityConfig()
        )
        traced, events = self._run_profiled(
            ExecutionConfig(workers=2, shard_size=SHARD)
        )
        assert any(e["kind"] == "span.profile" for e in events)
        assert np.array_equal(plain.traces().traces, traced.traces)

    def test_only_outermost_spans_profile(self):
        _, events = self._run_profiled(ExecutionConfig(shard_size=SHARD))
        profiled = {e["name"] for e in events if e["kind"] == "span.profile"}
        started = {e["name"] for e in events if e["kind"] == "span.start"}
        # Nested spans (shard.* inside stage.traces) never re-profile.
        assert profiled
        assert profiled < started

    def test_cli_profile_flag_surfaces_hotspots(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        code = main(
            ["run", "--set", "trace_count=32", "--trace", str(trace),
             "--profile", "--store", str(tmp_path / "store")]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Profile hotspots: stage." in out
        assert "cumulative [s]" in out

    def test_trace_summary_reports_quantile_columns(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        assert main(
            ["run", "--set", "trace_count=32", "--trace", str(trace),
             "--store", str(tmp_path / "store")]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out and "p99" in out
