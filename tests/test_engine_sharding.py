"""Shard plans: determinism, coverage and stream independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import plan_assessment_shards, plan_shards


class TestTracePlans:
    def test_covers_the_campaign_contiguously(self):
        shards = plan_shards(1000, 256, seed=2005)
        assert [shard.count for shard in shards] == [256, 256, 256, 232]
        assert [shard.start for shard in shards] == [0, 256, 512, 768]
        assert [shard.index for shard in shards] == [0, 1, 2, 3]

    def test_exact_multiple_has_no_tail_shard(self):
        shards = plan_shards(512, 256, seed=1)
        assert [shard.count for shard in shards] == [256, 256]

    def test_single_shard_when_campaign_fits(self):
        (shard,) = plan_shards(100, 256, seed=1)
        assert shard.count == 100 and shard.start == 0

    def test_plan_is_deterministic(self):
        first = plan_shards(1000, 128, seed=7)
        second = plan_shards(1000, 128, seed=7)
        for a, b in zip(first, second):
            rng_a = np.random.default_rng(a.seed_sequence)
            rng_b = np.random.default_rng(b.seed_sequence)
            assert np.array_equal(rng_a.integers(0, 16, 64), rng_b.integers(0, 16, 64))

    def test_shards_draw_from_distinct_streams(self):
        shards = plan_shards(1000, 256, seed=7)
        draws = [
            np.random.default_rng(shard.seed_sequence).integers(0, 1 << 30, 32)
            for shard in shards
        ]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j])

    def test_plan_depends_on_the_seed(self):
        a = plan_shards(256, 256, seed=1)[0]
        b = plan_shards(256, 256, seed=2)[0]
        assert not np.array_equal(
            np.random.default_rng(a.seed_sequence).integers(0, 1 << 30, 32),
            np.random.default_rng(b.seed_sequence).integers(0, 1 << 30, 32),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(0, 256, seed=1)
        with pytest.raises(ValueError):
            plan_shards(100, 0, seed=1)

    def test_min_shard_size_floors_the_shard_size(self):
        shards = plan_shards(4000, 256, seed=1, min_shard_size=500)
        assert [shard.count for shard in shards] == [500] * 8
        # A floor below the requested size changes nothing.
        small = plan_shards(1000, 256, seed=1, min_shard_size=100)
        assert [shard.count for shard in small] == [256, 256, 256, 232]

    def test_min_shard_size_matches_an_explicit_plan(self):
        floored = plan_shards(4000, 64, seed=9, min_shard_size=500)
        explicit = plan_shards(4000, 500, seed=9)
        assert [shard.count for shard in floored] == [
            shard.count for shard in explicit
        ]
        for a, b in zip(floored, explicit):
            assert np.array_equal(
                np.random.default_rng(a.seed_sequence).integers(0, 1 << 30, 16),
                np.random.default_rng(b.seed_sequence).integers(0, 1 << 30, 16),
            )


class TestMinShardSizeConfig:
    """The ExecutionConfig-level floor the benchmarks rely on."""

    def test_effective_shard_size_is_floored(self):
        from repro.flow.config import ExecutionConfig

        config = ExecutionConfig(workers=4, shard_size=64, min_shard_size=500)
        assert config.effective_shard_size == 500
        assert ExecutionConfig(shard_size=512, min_shard_size=100).effective_shard_size == 512

    def test_min_shard_size_alone_does_not_activate_the_engine(self):
        from repro.flow.config import ExecutionConfig

        assert ExecutionConfig(min_shard_size=500).active is False
        assert ExecutionConfig(workers=4, min_shard_size=500).active is True

    def test_floored_parallel_campaign_stays_bit_identical(self):
        from repro.flow import DesignFlow

        def run(workers):
            flow = DesignFlow.sbox(0xB, trace_count=600)
            flow.config = flow.config.replace(
                execution=flow.config.execution.replace(
                    workers=workers, shard_size=64, min_shard_size=300
                )
            )
            return flow.traces()

        serial, parallel = run(1), run(4)
        assert np.array_equal(serial.traces, parallel.traces)
        assert np.array_equal(serial.plaintexts, parallel.plaintexts)


class TestAssessmentPlans:
    def test_classes_split_identically_and_exactly(self):
        shards = plan_assessment_shards(1000, 256, seed=3)
        assert all(shard.fixed_count == shard.random_count for shard in shards)
        assert sum(shard.fixed_count for shard in shards) == 1000
        # ~shard_size traces per shard: shard_size // 2 per class.
        assert {shard.fixed_count for shard in shards[:-1]} == {128}

    def test_tiny_shard_size_still_progresses(self):
        shards = plan_assessment_shards(3, 1, seed=3)
        assert sum(shard.fixed_count for shard in shards) == 3
        assert all(shard.fixed_count >= 1 for shard in shards)
