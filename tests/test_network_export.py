"""Unit tests for netlist export."""

import pytest

from repro.boolexpr import parse
from repro.core import synthesize_fc_dpdn
from repro.network import build_genuine_dpdn, to_dot, to_edge_list, to_spice_subckt


class TestSpiceExport:
    def test_subckt_header_and_ports(self, and2_fc):
        deck = to_spice_subckt(and2_fc, name="AND2_FC")
        assert ".subckt AND2_FC" in deck
        assert ".ends AND2_FC" in deck
        # Ports: X, Y, Z plus both rails of each input.
        header = [line for line in deck.splitlines() if line.startswith(".subckt")][0]
        for port in ("X", "Y", "Z", "A", "A_b", "B", "B_b"):
            assert f" {port}" in header

    def test_one_device_line_per_transistor(self, and2_fc):
        deck = to_spice_subckt(and2_fc)
        device_lines = [line for line in deck.splitlines() if line.startswith("M")]
        assert len(device_lines) == and2_fc.device_count()

    def test_width_scaling(self):
        dpdn = build_genuine_dpdn(parse("A"))
        deck = to_spice_subckt(dpdn, width_um=1.0)
        assert "W=1.000u" in deck

    def test_function_comment_present(self, and2_fc):
        assert "function" in to_spice_subckt(and2_fc)


class TestDotExport:
    def test_contains_every_node_and_edge(self, and2_fc):
        dot = to_dot(and2_fc)
        for node in and2_fc.nodes():
            assert f'"{node}"' in dot
        assert dot.count("--") == and2_fc.device_count()

    def test_highlighting(self, and2_genuine):
        dot = to_dot(and2_genuine, highlight_nodes=and2_genuine.internal_nodes())
        assert "fillcolor" in dot

    def test_external_nodes_are_boxes(self, and2_fc):
        assert "shape=box" in to_dot(and2_fc)


class TestEdgeList:
    def test_edge_list_round_trip_information(self, and2_fc):
        edges = to_edge_list(and2_fc)
        assert len(edges) == and2_fc.device_count()
        first = edges[0]
        assert set(first) == {"name", "gate", "variable", "polarity", "drain", "source"}

    def test_polarity_field(self):
        dpdn = synthesize_fc_dpdn(parse("~A & B"))
        polarities = {(edge["variable"], edge["polarity"]) for edge in to_edge_list(dpdn)}
        assert ("A", "false") in polarities and ("A", "true") in polarities
