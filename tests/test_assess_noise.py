"""Noise models: behaviour, registry and spec parsing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assess import (
    AdcQuantizationNoise,
    GaussianAmplitudeNoise,
    NoiseChain,
    NoiseModel,
    TemporalJitterNoise,
    known_noise_models,
    make_noise_model,
    register_noise_model,
    unregister_noise_model,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(2005)


class TestGaussian:
    def test_relative_sigma_scales_with_mean(self, rng):
        energies = np.full(20_000, 4.0)
        noisy = GaussianAmplitudeNoise(std=0.05)(energies, rng)
        assert np.isclose(noisy.std(), 0.05 * 4.0, rtol=0.05)
        assert np.isclose(noisy.mean(), 4.0, rtol=0.01)

    def test_absolute_sigma(self, rng):
        energies = np.zeros(20_000)
        noisy = GaussianAmplitudeNoise(std=0.3, relative=False)(energies, rng)
        assert np.isclose(noisy.std(), 0.3, rtol=0.05)

    def test_zero_std_is_identity(self, rng):
        energies = np.arange(8.0)
        assert GaussianAmplitudeNoise(std=0.0)(energies, rng) is not None
        np.testing.assert_array_equal(
            GaussianAmplitudeNoise(std=0.0)(energies, rng), energies
        )

    def test_input_not_mutated(self, rng):
        energies = np.ones(64)
        GaussianAmplitudeNoise(std=0.5)(energies, rng)
        np.testing.assert_array_equal(energies, np.ones(64))

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianAmplitudeNoise(std=-1.0)


class TestQuantization:
    def test_snaps_to_grid(self, rng):
        energies = np.linspace(0.0, 1.0, 1000)
        quantized = AdcQuantizationNoise(bits=4)(energies, rng)
        assert len(np.unique(quantized)) <= 16
        assert np.max(np.abs(quantized - energies)) <= 1.0 / 15 / 2 + 1e-12

    def test_fixed_full_scale_clips(self, rng):
        model = AdcQuantizationNoise(bits=8, full_scale=(0.0, 1.0))
        quantized = model(np.array([-0.5, 0.5, 1.5]), rng)
        assert quantized[0] == 0.0
        assert quantized[2] == 1.0

    def test_constant_input_unchanged(self, rng):
        energies = np.full(10, 3.0)
        np.testing.assert_array_equal(
            AdcQuantizationNoise(bits=8)(energies, rng), energies
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            AdcQuantizationNoise(bits=0)
        with pytest.raises(ValueError):
            AdcQuantizationNoise(bits=8, full_scale=(1.0, 1.0))


class TestJitter:
    def test_slips_samples_to_predecessor(self, rng):
        energies = np.arange(10_000, dtype=float)
        jittered = TemporalJitterNoise(probability=0.25)(energies, rng)
        slipped = jittered != energies
        assert not slipped[0]
        assert np.isclose(slipped.mean(), 0.25, atol=0.02)
        indices = np.nonzero(slipped)[0]
        np.testing.assert_array_equal(jittered[indices], energies[indices - 1])

    def test_zero_probability_is_identity(self, rng):
        energies = np.arange(16, dtype=float)
        np.testing.assert_array_equal(
            TemporalJitterNoise(probability=0.0)(energies, rng), energies
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TemporalJitterNoise(probability=1.5)


class TestSpecsAndRegistry:
    def test_builtins_registered(self):
        assert {"gaussian", "quantization", "jitter"} <= set(known_noise_models())

    def test_make_from_name_and_mapping(self):
        assert isinstance(make_noise_model("jitter"), TemporalJitterNoise)
        assert isinstance(make_noise_model("gaussian"), GaussianAmplitudeNoise)
        model = make_noise_model({"name": "quantization", "bits": 8})
        assert isinstance(model, AdcQuantizationNoise)
        assert model.bits == 8

    def test_make_from_sequence_composes(self, rng):
        chain = make_noise_model((
            {"name": "gaussian", "std": 0.1},
            {"name": "quantization", "bits": 6},
        ))
        assert isinstance(chain, NoiseChain)
        assert len(chain) == 2
        assert "gaussian" in chain.describe()
        energies = np.linspace(1.0, 2.0, 100)
        quantized = chain(energies, rng)
        assert len(np.unique(quantized)) <= 64

    def test_model_instances_pass_through(self):
        model = GaussianAmplitudeNoise(std=0.1)
        assert make_noise_model(model) is model

    def test_unknown_and_invalid_specs(self):
        with pytest.raises(ValueError, match="unknown noise model"):
            make_noise_model("no_such_model")
        with pytest.raises(ValueError, match="missing its 'name'"):
            make_noise_model({"std": 0.1})

    def test_register_and_unregister(self, rng):
        class Offset(NoiseModel):
            name = "offset"

            def __init__(self, amount):
                self.amount = amount

            def apply(self, energies, rng):
                return energies + self.amount

            def to_dict(self):
                return {"name": self.name, "amount": self.amount}

        register_noise_model("offset", lambda amount: Offset(amount))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_noise_model("offset", lambda amount: Offset(amount))
            model = make_noise_model({"name": "offset", "amount": 2.0})
            np.testing.assert_array_equal(model(np.zeros(3), rng), np.full(3, 2.0))
        finally:
            unregister_noise_model("offset")
        assert "offset" not in known_noise_models()
        with pytest.raises(KeyError):
            unregister_noise_model("offset")

    def test_serialisation_round_trip(self):
        for spec in (
            {"name": "gaussian", "std": 0.02, "relative": False},
            {"name": "quantization", "bits": 10, "full_scale": [0.0, 2.0]},
            {"name": "jitter", "probability": 0.05},
        ):
            model = make_noise_model(spec)
            rebuilt = make_noise_model(model.to_dict())
            assert rebuilt.to_dict() == model.to_dict()
