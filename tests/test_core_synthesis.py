"""Unit tests for the Section 4.1 synthesis procedure."""

import pytest

from repro.boolexpr import DecompositionStyle, complement, parse, to_nnf
from repro.core import synthesize_fc_dpdn, synthesize_fc_dpdn_with_steps, verify_gate
from repro.network import (
    build_genuine_dpdn,
    evaluation_depths,
    is_fully_connected,
    realized_function,
)


class TestAndNandFig2:
    """The AND-NAND example of the paper's Fig. 2 (right)."""

    def test_device_count_matches_genuine(self, and2, and2_fc, and2_genuine):
        assert and2_fc.device_count() == and2_genuine.device_count() == 4

    def test_single_internal_node(self, and2_fc):
        assert len(and2_fc.internal_nodes()) == 1

    def test_fully_connected(self, and2_fc):
        assert is_fully_connected(and2_fc)

    def test_structure_shares_the_b_network(self, and2_fc):
        # In Fig. 2 (right) the B transistor hangs below the internal node
        # W and is shared: A and ~A both connect to W, B connects W to Z
        # and ~B connects Y directly to Z.
        internal = and2_fc.internal_nodes()[0]
        gates_at_internal = sorted(repr(t.gate) for t in and2_fc.transistors_at(internal))
        assert gates_at_internal == ["A", "B", "~A"]

    def test_function(self, and2, and2_fc):
        assert verify_gate(and2_fc, and2).passed


class TestGeneralSynthesis:
    def test_every_representative_cell_is_correct_and_fully_connected(
        self, representative_function
    ):
        name, function = representative_function
        dpdn = synthesize_fc_dpdn(function, name=name)
        report = verify_gate(dpdn, function)
        assert report.passed, report.describe()

    def test_device_count_equals_genuine_for_and_or_functions(self):
        # For AND/OR factored forms (no XOR lowering) the synthesis uses
        # exactly as many devices as the genuine network.
        for text in ("A & B", "A | B", "(A | B) & C", "((A | B) & (C | D))'", "A & B & C & D"):
            function = parse(text)
            genuine = build_genuine_dpdn(function)
            fc = synthesize_fc_dpdn(function)
            assert fc.device_count() == genuine.device_count(), text

    def test_single_literal_function(self):
        dpdn = synthesize_fc_dpdn(parse("A"))
        assert dpdn.device_count() == 2
        assert dpdn.internal_nodes() == []
        assert is_fully_connected(dpdn)

    def test_negated_literal_function(self):
        dpdn = synthesize_fc_dpdn(parse("~A"))
        table = realized_function(dpdn)
        assert table[(("A", False),)] == (True, False)
        assert table[(("A", True),)] == (False, True)

    def test_xor_is_lowered_and_correct(self):
        dpdn = synthesize_fc_dpdn(parse("A ^ B ^ C"))
        assert verify_gate(dpdn, parse("A ^ B ^ C")).passed

    def test_constant_function_rejected(self):
        with pytest.raises(ValueError):
            synthesize_fc_dpdn(parse("A & ~A"))

    def test_decomposition_style_changes_depth_not_connectivity(self):
        function = parse("A & B & C & D")
        linear = synthesize_fc_dpdn(function, style=DecompositionStyle.LINEAR)
        balanced = synthesize_fc_dpdn(function, style=DecompositionStyle.BALANCED)
        assert is_fully_connected(linear) and is_fully_connected(balanced)
        linear_max = max(d for d in evaluation_depths(linear).values())
        balanced_max = max(d for d in evaluation_depths(balanced).values())
        assert balanced_max <= linear_max

    def test_internal_node_count_equals_and_or_operations(self):
        # Each binary decomposition step introduces exactly one internal node.
        function = to_nnf(parse("(A | B) & (C | D)"))
        dpdn = synthesize_fc_dpdn(function)
        assert len(dpdn.internal_nodes()) == 3


class TestSynthesisTrace:
    def test_steps_cover_every_literal_and_operation(self, oai22):
        result = synthesize_fc_dpdn_with_steps(oai22, name="OAI22")
        literal_steps = [step for step in result.steps if step.kind == "literal"]
        operation_steps = [step for step in result.steps if step.kind != "literal"]
        assert len(literal_steps) == 4
        assert len(operation_steps) == 3
        assert result.dpdn.device_count() == 8

    def test_describe_mentions_internal_nodes(self, and2):
        result = synthesize_fc_dpdn_with_steps(and2)
        text = result.describe()
        assert "AND" in text and "literal" in text
