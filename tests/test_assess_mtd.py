"""Measurements-to-disclosure: bootstrapped success-rate curves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assess import MTDCurve, SuccessRatePoint, bootstrap_success_rate, success_rate_curve
from repro.power import PRESENT_SBOX, acquire_model_traces, dpa_difference_of_means
from repro.power.trace import TraceSet


@pytest.fixture(scope="module")
def leaky_traces():
    # Unprotected Hamming-weight model with moderate noise: CPA recovers
    # the key comfortably within a few hundred traces.
    return acquire_model_traces(key=0xB, trace_count=600, noise_std=0.5, seed=11)


@pytest.fixture(scope="module")
def constant_traces():
    rng = np.random.default_rng(5)
    return TraceSet(
        plaintexts=rng.integers(0, 16, size=400),
        traces=np.full(400, 1.0),
        key=0xB,
        description="constant power",
    )


class TestBootstrapSuccessRate:
    def test_leaky_target_discloses(self, leaky_traces):
        point = bootstrap_success_rate(
            leaky_traces, PRESENT_SBOX, trace_count=400,
            repetitions=10, rng=np.random.default_rng(1),
        )
        assert point.success_rate >= 0.9
        assert point.mean_rank < 1.0
        assert point.repetitions == 10

    def test_constant_target_resists(self, constant_traces):
        point = bootstrap_success_rate(
            constant_traces, PRESENT_SBOX, trace_count=200,
            repetitions=10, rng=np.random.default_rng(2),
        )
        assert point.success_rate <= 0.4  # chance level is 1/16

    def test_validation(self, leaky_traces):
        with pytest.raises(ValueError):
            bootstrap_success_rate(leaky_traces, PRESENT_SBOX, trace_count=0)
        with pytest.raises(ValueError):
            bootstrap_success_rate(
                leaky_traces, PRESENT_SBOX, trace_count=10_000
            )
        with pytest.raises(ValueError):
            bootstrap_success_rate(
                leaky_traces, PRESENT_SBOX, trace_count=10, repetitions=0
            )


class TestSuccessRateCurve:
    def test_leaky_curve_discloses(self, leaky_traces):
        curve = success_rate_curve(
            leaky_traces, PRESENT_SBOX, repetitions=8, seed=3
        )
        assert curve.disclosed
        assert curve.mtd is not None
        assert curve.mtd <= len(leaky_traces)
        # Later points should hold the success rate (stability filter).
        assert curve.points[-1].success_rate >= curve.success_threshold

    def test_constant_curve_resists(self, constant_traces):
        curve = success_rate_curve(
            constant_traces, PRESENT_SBOX, repetitions=6, seed=4
        )
        assert not curve.disclosed
        assert curve.mtd is None

    def test_seed_reproducibility(self, leaky_traces):
        first = success_rate_curve(leaky_traces, PRESENT_SBOX, repetitions=5, seed=9)
        second = success_rate_curve(leaky_traces, PRESENT_SBOX, repetitions=5, seed=9)
        assert [p.to_dict() for p in first.points] == [
            p.to_dict() for p in second.points
        ]

    def test_custom_steps_and_attack(self, leaky_traces):
        curve = success_rate_curve(
            leaky_traces,
            PRESENT_SBOX,
            attack=lambda traces, sbox: dpa_difference_of_means(
                traces, sbox, target_bit=2
            ),
            steps=[50, 200, 600],
            repetitions=4,
            seed=6,
            attack_name="dom",
        )
        assert [point.trace_count for point in curve.points] == [50, 200, 600]
        assert curve.attack_name == "dom"

    def test_stability_filter_ignores_early_luck(self):
        # A curve that dips back under the threshold after an early spike
        # must not report the spike as the MTD.
        points = (
            SuccessRatePoint(10, 1.0, 0.0, 5),
            SuccessRatePoint(20, 0.2, 3.0, 5),
            SuccessRatePoint(40, 1.0, 0.0, 5),
            SuccessRatePoint(80, 1.0, 0.0, 5),
        )
        curve = MTDCurve(points=points, success_threshold=0.9)
        assert curve.mtd == 40

    def test_rows_and_dict(self, leaky_traces):
        curve = success_rate_curve(leaky_traces, PRESENT_SBOX, repetitions=4, seed=8)
        record = curve.to_dict()
        assert record["method"] == "mtd"
        assert record["mtd"] == curve.mtd
        rows = curve.summary_rows()
        assert rows[-1][1] == "measurements to disclosure"
        assert "MTD" in curve.describe()

    def test_threshold_validation(self, leaky_traces):
        with pytest.raises(ValueError):
            success_rate_curve(leaky_traces, PRESENT_SBOX, success_threshold=0.0)
