"""The layout flow stage: wiring, acceptance pins, store keys, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import content_key, trace_store_record
from repro.engine.cli import main as repro_main
from repro.flow import (
    AssessmentConfig,
    ConfigError,
    DesignFlow,
    ExecutionConfig,
    FlowConfig,
    FlowError,
    LayoutConfig,
)
from repro.power.trace import acquire_circuit_traces


def routed_config(router, name="routed", traces_per_class=150, **layout_overrides):
    return FlowConfig(
        name=name,
        layout=LayoutConfig(router=router, **layout_overrides),
        assessment=AssessmentConfig(enabled=True, traces_per_class=traces_per_class),
    )


class TestLayoutConfig:
    def test_round_trips_through_dict(self):
        config = LayoutConfig(router="fat", seed=3, grid=(6, 7), anneal_moves=100)
        rebuilt = LayoutConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config
        assert rebuilt.grid == (6, 7)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LayoutConfig(router="")
        with pytest.raises(ConfigError):
            LayoutConfig(grid=(0, 4))
        with pytest.raises(ConfigError):
            LayoutConfig(grid="23")  # a string is not a (rows, cols) pair
        with pytest.raises(ConfigError):
            LayoutConfig(grid=6)  # neither is a bare scalar
        with pytest.raises(ConfigError):
            LayoutConfig(anneal_moves=-1)
        assert not LayoutConfig().routed
        assert LayoutConfig(router="fat").routed

    def test_flow_config_carries_a_layout_section(self):
        config = FlowConfig()
        assert config.layout == LayoutConfig()
        rebuilt = FlowConfig.from_dict(config.to_dict())
        assert rebuilt.layout == LayoutConfig()


class TestLayoutStage:
    def test_layout_free_flow_skips_the_stage_and_keeps_legacy_streams(self):
        flow = DesignFlow.sbox(0xB, trace_count=120)
        report = flow.run()
        assert "layout" not in report.stages()
        assert flow.layout() is None  # on demand: a cheap no-op
        # the default config is byte-identical to the pre-layout pipeline
        legacy = acquire_circuit_traces(flow.circuit(), 0xB, 120)
        assert np.array_equal(flow.traces().traces, legacy.traces)
        assert np.array_equal(flow.traces().plaintexts, legacy.plaintexts)

    def test_routed_flow_runs_the_stage(self):
        flow = DesignFlow.sbox(0xB, config=routed_config("fat"), trace_count=100)
        report = flow.run()
        assert "layout" in report.stages()
        details = report["layout"].details
        assert details["router"] == "fat"
        assert details["max_mismatch_fF"] == 0.0
        assert report["traces"].details["router"] == "fat"
        assert "layout" in report.to_dict()
        assert "Routing imbalance" in report.format_layout()

    def test_unknown_router_is_a_flow_error(self):
        flow = DesignFlow.sbox(0xB, config=routed_config("nope"))
        with pytest.raises(FlowError, match="unknown router"):
            flow.result("layout")

    def test_invalidating_the_circuit_drops_the_layout(self):
        flow = DesignFlow.sbox(0xB, config=routed_config("fat"), trace_count=60)
        flow.traces()
        assert "layout" in flow.computed_stages()
        flow.invalidate("circuit")
        assert "layout" not in flow.computed_stages()
        assert "traces" not in flow.computed_stages()

    def test_fat_vs_unbalanced_acceptance(self):
        """The paper's back-end claim, pinned end to end.

        A fat-routed run reports zero per-pair mismatch and passes TVLA;
        an unbalanced run of the same circuit reports nonzero mismatch
        and a strictly worse (or equal) verdict.
        """
        fat = DesignFlow.sbox(0xB, config=routed_config("fat"), trace_count=60)
        unbalanced = DesignFlow.sbox(
            0xB, config=routed_config("unbalanced"), trace_count=60
        )
        fat.run()
        unbalanced.run()
        assert fat.layout().parasitics.max_mismatch() == 0.0
        assert unbalanced.layout().parasitics.max_mismatch() > 0.0
        fat_t = fat.assessment()["ttest"]
        unbalanced_t = unbalanced.assessment()["ttest"]
        assert not fat_t.leaks
        assert unbalanced_t.leaks
        assert unbalanced_t.max_abs_t >= fat_t.max_abs_t

    def test_present_round_scenario_routes_too(self):
        from repro.flow import ScenarioConfig

        config = FlowConfig(
            name="routed_round",
            campaign=FlowConfig().campaign.replace(
                scenario="present_round", key=0x6B, trace_count=60
            ),
            scenario=ScenarioConfig(params={"sboxes": 2}),
            layout=LayoutConfig(router="fat"),
        )
        flow = DesignFlow(None, config)
        report = flow.run()
        assert report["layout"].details["max_mismatch_fF"] == 0.0
        loads = flow.layout().parasitics.rail_loads()
        assert set(loads) == {gate.output_net for gate in flow.circuit().gates}
        # subkey recovery still projects onto the configured attack point
        assert "analysis" in report.stages()

    def test_expression_workload_routes_too(self):
        flow = DesignFlow(
            {"F": "(A & B) | C"},
            FlowConfig(name="expr", layout=LayoutConfig(router="diffpair")),
        )
        report = flow.run()
        assert "layout" in report.stages()
        assert report["layout"].details["router"] == "diffpair"


class TestEngineIntegration:
    def test_sharded_routed_campaign_is_bit_identical(self):
        config = routed_config("unbalanced").replace(
            execution=ExecutionConfig(shard_size=32)
        )
        sharded = DesignFlow.sbox(0xB, config=config, trace_count=96)
        serial = DesignFlow.sbox(
            0xB,
            config=config.replace(
                execution=ExecutionConfig(shard_size=32, workers=2)
            ),
            trace_count=96,
        )
        assert np.array_equal(sharded.traces().traces, serial.traces().traces)

    def test_store_keys_cover_the_layout_config(self):
        def key(**layout):
            flow = DesignFlow.sbox(
                0xB, config=FlowConfig(layout=LayoutConfig(**layout))
            )
            return content_key(trace_store_record(flow))

        plain = key()
        fat = key(router="fat")
        unbalanced = key(router="unbalanced")
        reseeded = key(router="fat", seed=99)
        regridded = key(router="fat", grid=(20, 20))
        assert len({plain, fat, unbalanced, reseeded, regridded}) == 5

    def test_layout_free_keys_ignore_inert_layout_fields(self):
        def key(**layout):
            flow = DesignFlow.sbox(
                0xB, config=FlowConfig(layout=LayoutConfig(**layout))
            )
            return content_key(trace_store_record(flow))

        # without a router the placement parameters cannot change the
        # campaign, so they must not fragment the cache
        assert key() == key(seed=123, anneal_moves=9)

    def test_model_campaign_keys_ignore_the_router(self):
        def key(router):
            config = FlowConfig(
                layout=LayoutConfig(router=router),
                campaign=FlowConfig().campaign.replace(source="model"),
            )
            return content_key(trace_store_record(DesignFlow.sbox(0xB, config=config)))

        assert key(None) == key("fat")


class TestCli:
    def test_run_with_router(self, capsys):
        assert (
            repro_main(
                [
                    "run",
                    "--router",
                    "fat",
                    "--set",
                    "trace_count=60",
                    "--set",
                    "assessment.enabled=true",
                    "--set",
                    "assessment.traces_per_class=80",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "router=fat" in out
        assert "Routing imbalance" in out

    def test_run_with_unknown_router_fails_cleanly(self, capsys):
        assert repro_main(["run", "--router", "bogus", "--set", "trace_count=50"]) == 2
        assert "unknown router" in capsys.readouterr().err

    def test_sweep_over_the_router_axis(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert (
            repro_main(
                [
                    "sweep",
                    "--set",
                    "trace_count=50",
                    "--axis",
                    "layout.router=fat,unbalanced",
                    "--json",
                    str(out),
                ]
            )
            == 0
        )
        cells = json.loads(out.read_text())["cells"]
        assert [cell["overrides"]["layout.router"] for cell in cells] == [
            "fat",
            "unbalanced",
        ]
