"""Unit and property tests for the lightweight simplifier."""

import pytest

from repro.boolexpr import FALSE, TRUE, Var, equivalent, parse, simplify, simplify_constants

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings

from strategies import expression_strategy


class TestConstantFolding:
    def test_and_with_false(self):
        assert simplify_constants(parse("A & 0")) == FALSE

    def test_and_with_true_drops_constant(self):
        assert simplify_constants(parse("A & 1")) == Var("A")

    def test_or_with_true(self):
        assert simplify_constants(parse("A | 1")) == TRUE

    def test_or_with_false_drops_constant(self):
        assert simplify_constants(parse("A | 0")) == Var("A")

    def test_double_negation(self):
        assert simplify_constants(parse("~~A")) == Var("A")

    def test_xor_with_constants(self):
        assert equivalent(simplify_constants(parse("A ^ 1")), parse("~A"))
        assert simplify_constants(parse("A ^ 0")) == Var("A")

    def test_nested_folding(self):
        assert simplify_constants(parse("(A & 1) | (B & 0)")) == Var("A")


class TestLocalRules:
    def test_idempotence(self):
        assert simplify(parse("A & A")) == Var("A")
        assert simplify(parse("A | A")) == Var("A")

    def test_complementation(self):
        assert simplify(parse("A & ~A")) == FALSE
        assert simplify(parse("A | ~A")) == TRUE

    def test_absorption(self):
        assert simplify(parse("A | (A & B)")) == Var("A")
        assert simplify(parse("A & (A | B)")) == Var("A")

    def test_keeps_irreducible_expressions(self):
        expr = parse("(A & B) | (C & D)")
        assert equivalent(simplify(expr), expr)


class TestProperties:
    @given(expression_strategy())
    @settings(max_examples=60, deadline=None)
    def test_simplify_preserves_function(self, expr):
        assert equivalent(simplify(expr), expr)

    @given(expression_strategy())
    @settings(max_examples=60, deadline=None)
    def test_simplify_constants_preserves_function(self, expr):
        assert equivalent(simplify_constants(expr), expr)

    @given(expression_strategy(max_leaves=6))
    @settings(max_examples=40, deadline=None)
    def test_simplify_never_grows_literal_count(self, expr):
        assert simplify(expr).literal_count() <= expr.literal_count()
