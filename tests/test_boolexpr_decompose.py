"""Unit tests for the binary AND/OR decomposition (synthesis Step 1)."""

import pytest

from repro.boolexpr import (
    FALSE,
    And,
    DecompositionStyle,
    Not,
    Or,
    Var,
    decompose,
    equivalent,
    parse,
    to_nnf,
)
from repro.boolexpr.decompose import decomposition_tree_depth


class TestLiteralCase:
    def test_variable(self):
        result = decompose(Var("A"))
        assert result.is_literal
        assert result.literal == Var("A")

    def test_negated_variable(self):
        result = decompose(Not(Var("A")))
        assert result.is_literal
        assert result.literal == Not(Var("A"))


class TestBinarySplit:
    def test_and_identified(self):
        result = decompose(parse("A & B"))
        assert result.kind == "and"
        assert result.x == Var("A") and result.y == Var("B")

    def test_or_identified(self):
        result = decompose(parse("A | B"))
        assert result.kind == "or"

    def test_linear_split_of_nary_and(self):
        result = decompose(parse("A & B & C & D"), DecompositionStyle.LINEAR)
        assert result.x == Var("A")
        assert result.y == parse("B & C & D")

    def test_balanced_split_of_nary_and(self):
        result = decompose(parse("A & B & C & D"), DecompositionStyle.BALANCED)
        assert result.x == parse("A & B")
        assert result.y == parse("C & D")

    def test_split_preserves_function(self):
        expr = parse("A | B | C | D | E")
        for style in DecompositionStyle:
            result = decompose(expr, style)
            assert equivalent(Or(result.x, result.y), expr)


class TestErrors:
    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            decompose(FALSE)

    def test_non_nnf_rejected(self):
        with pytest.raises(ValueError):
            decompose(Not(parse("A & B")))

    def test_xor_rejected_until_lowered(self):
        with pytest.raises(ValueError):
            decompose(parse("A ^ B"))
        # Lowering first makes it decomposable.
        assert decompose(to_nnf(parse("A ^ B"))).kind == "or"


class TestTreeDepth:
    def test_literal_depth_zero(self):
        assert decomposition_tree_depth(Var("A")) == 0

    def test_linear_vs_balanced_depth(self):
        expr = parse("A & B & C & D")
        assert decomposition_tree_depth(expr, DecompositionStyle.LINEAR) == 3
        assert decomposition_tree_depth(expr, DecompositionStyle.BALANCED) == 2

    def test_depth_of_two_level_expression(self):
        assert decomposition_tree_depth(parse("(A & B) | (C & D)")) == 2
