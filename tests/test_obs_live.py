"""Live telemetry: heartbeats, streaming progress, ``repro top``.

The live channel extends the cardinal rule instead of bending it: a
live-channel run must stay bit-identical to buffered and untraced runs
(serial and parallel, fork and spawn), the buffered piggyback stays the
canonical event record (no duplicate deliveries), and a full, closed or
misbehaving live path degrades to exactly the buffered behavior --
dropped telemetry, intact results.  These tests pin that contract plus
the new surfaces: schema v3, tail-safe trace reading, the progress
aggregator, executor-level mid-shard delivery, heartbeat-enriched
timeouts, and the ``repro top`` / ``trace summary --follow`` CLI.
"""

from __future__ import annotations

import json
import os
import pickle
import queue as queue_module
import threading
import time

import numpy as np
import pytest

from repro.engine import (
    ShardTimeoutError,
    get_executor,
    run_sweep,
    shutdown_pools,
    warm_pool,
    warm_pool_stats,
)
from repro.engine.cli import main
from repro.engine.executors import _pool_channel, default_start_method
from repro.flow import (
    AssessmentConfig,
    CampaignConfig,
    DesignFlow,
    ExecutionConfig,
    FlowConfig,
    ObservabilityConfig,
)
from repro.flow.config import ConfigError
from repro.obs import (
    SCHEMA_VERSION,
    BufferSink,
    LiveSink,
    MetricsRegistry,
    ObsError,
    Observer,
    ProgressAggregator,
    iter_trace_events,
    make_event,
    summarize_trace_file,
    use_observer,
    validate_event,
)
from repro.obs import live as obs_live

TRACES = 48
SHARD = 16

#: Live streaming with no console/file output: heartbeats every 50 ms,
#: every event forwarded (no sampling), results untouched by contract.
LIVE_OBS = ObservabilityConfig(
    sinks=("null",), live=True, heartbeat_s=0.05, live_interval_s=0.0
)


def _flow(execution, obs=LIVE_OBS, **campaign):
    campaign.setdefault("trace_count", TRACES)
    campaign.setdefault("noise_std", 0.01)
    config = FlowConfig(
        name="live_sbox",
        campaign=CampaignConfig(**campaign),
        execution=execution,
        obs=obs,
    )
    return DesignFlow.sbox(0xB, config=config)


def _run_live(execution, obs=LIVE_OBS, **campaign):
    buffer = []
    with use_observer(Observer((BufferSink(buffer),))):
        traces = _flow(execution, obs=obs, **campaign).traces()
    return traces, buffer


# Module-level so they pickle into pool workers.


def _stream_and_sleep(payload):
    # Streams heartbeats from inside the task, then lingers: the parent
    # must see the beats *while* this sleep is still running.
    beat = obs_live.start_heartbeat(obs_live.worker_queue(), 0.05)
    try:
        time.sleep(0.6)
    finally:
        beat.stop()
    return payload * 2


def _die(_payload):
    os._exit(13)


class _FullQueue:
    def put_nowait(self, event):
        raise queue_module.Full


class _ClosedQueue:
    def put_nowait(self, event):
        raise ValueError("queue is closed")


class _RecordingQueue:
    def __init__(self):
        self.events = []

    def put_nowait(self, event):
        self.events.append(event)


def _event(kind, name, seq=0, **kwargs):
    return make_event(kind, name, seq=seq, **kwargs)


class TestSafePutAndLiveSink:
    @pytest.fixture(autouse=True)
    def _fresh_warning_flag(self, monkeypatch):
        monkeypatch.setattr(obs_live, "_DROP_WARNED", False)

    def test_full_queue_drops_with_a_single_warning(self, capsys):
        event = _event("counter", "kernel.x", value=1.0)
        assert obs_live.safe_put(_FullQueue(), event) is False
        assert obs_live.safe_put(_FullQueue(), event) is False
        err = capsys.readouterr().err
        assert err.count("dropping live telemetry") == 1
        assert "live event channel full" in err

    def test_closed_queue_drops_with_a_single_warning(self, capsys):
        event = _event("counter", "kernel.x", value=1.0)
        assert obs_live.safe_put(_ClosedQueue(), event) is False
        assert obs_live.safe_put(_ClosedQueue(), event) is False
        err = capsys.readouterr().err
        assert err.count("dropping live telemetry") == 1
        assert "live event channel closed" in err

    def test_sink_never_raises_into_the_observer(self):
        sink = LiveSink(_ClosedQueue(), interval_s=0.0)
        sink.emit(_event("counter", "kernel.x", value=1.0))  # must not raise

    def test_span_starts_never_stream(self):
        queue = _RecordingQueue()
        sink = LiveSink(queue, interval_s=0.0)
        sink.emit(_event("span.start", "shard.traces"))
        assert queue.events == []

    def test_critical_events_bypass_the_sampler(self):
        queue = _RecordingQueue()
        sink = LiveSink(queue, interval_s=3600.0)
        sink._last_sampled = time.monotonic()  # sampler window exhausted
        sink.emit(_event("counter", "kernel.batches", value=1.0))
        sink.emit(_event("span.end", "shard.traces", duration_s=0.1))
        sink.emit(_event("counter", "sweep.cells_done", value=1.0))
        names = [event["name"] for event in queue.events]
        assert names == ["shard.traces", "sweep.cells_done"]

    def test_noncritical_events_are_time_sampled(self):
        queue = _RecordingQueue()
        sink = LiveSink(queue, interval_s=3600.0)
        sink._last_sampled = time.monotonic() - 7200.0  # window open
        sink.emit(_event("counter", "kernel.batches", value=1.0))
        sink.emit(_event("counter", "kernel.batches", value=2.0))  # throttled
        assert [event["value"] for event in queue.events] == [1.0]


class TestMetrics:
    def test_gauge_inc_dec(self):
        gauge = MetricsRegistry().gauge("transport.segments")
        gauge.inc()
        gauge.inc(2.0)
        gauge.dec()
        assert gauge.value == 2.0
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_snapshot_is_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.gauge("alpha").set(1)
        registry.histogram("mid").observe(3.0)
        assert list(registry.snapshot()) == ["alpha", "mid", "zeta"]


class TestSchemaV3:
    def test_live_kinds_validate(self):
        assert SCHEMA_VERSION == 3
        heartbeat = obs_live.heartbeat_event()
        assert validate_event(heartbeat)["kind"] == "worker.heartbeat"
        progress = _event(
            "progress", "engine.progress", value=10.0, attrs={"unit": "traces"}
        )
        assert validate_event(progress)["v"] == 3

    def test_live_kinds_require_a_numeric_value(self):
        bad = _event("progress", "engine.progress", value=1.0)
        del bad["value"]
        with pytest.raises(ObsError, match="needs a numeric 'value'"):
            validate_event(bad)

    def test_older_schema_versions_stay_readable(self):
        for version in (1, 2):
            event = _event("span.end", "stage.traces", duration_s=0.5)
            event["v"] = version
            assert validate_event(event)["v"] == version

    def test_heartbeat_reports_task_and_rss(self):
        with obs_live.worker_task("traces", shard=3, traces=16):
            event = obs_live.heartbeat_event()
        assert event["attrs"]["task"] == "traces"
        assert event["attrs"]["shard"] == 3
        assert event["attrs"]["rss_mb"] >= 0
        assert obs_live.rss_bytes() > 0


class TestTailSafeReading:
    def _line(self, seq=0):
        return json.dumps(_event("counter", "kernel.x", seq=seq, value=1.0))

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        trace = tmp_path / "events.jsonl"
        trace.write_text(self._line(0) + "\n" + self._line(1)[: 20])
        summary = summarize_trace_file(str(trace))
        assert summary.events == 1

    def test_atomic_trailing_line_without_newline_still_counts(self, tmp_path):
        trace = tmp_path / "events.jsonl"
        trace.write_text(self._line(0) + "\n" + self._line(1))
        assert summarize_trace_file(str(trace)).events == 2

    def test_complete_garbage_line_still_raises(self, tmp_path):
        trace = tmp_path / "events.jsonl"
        trace.write_text("not json\n" + self._line(0) + "\n")
        with pytest.raises(ObsError, match=r":1:.*not valid JSON"):
            summarize_trace_file(str(trace))

    def test_follow_survives_a_racing_writer(self, tmp_path):
        trace = tmp_path / "events.jsonl"
        trace.write_text("")
        total = 20
        done = threading.Event()

        def write_slowly():
            with open(trace, "a", encoding="utf-8") as handle:
                for seq in range(total):
                    line = self._line(seq) + "\n"
                    # Two flushed half-writes per line: the reader keeps
                    # hitting truncated partials mid-append.
                    handle.write(line[: len(line) // 2])
                    handle.flush()
                    time.sleep(0.002)
                    handle.write(line[len(line) // 2:])
                    handle.flush()
            done.set()

        writer = threading.Thread(target=write_slowly)
        writer.start()
        try:
            events = list(
                iter_trace_events(
                    str(trace), follow=True, poll_s=0.01, stop=done.is_set
                )
            )
        finally:
            writer.join()
        assert [event["seq"] for event in events] == list(range(total))


class TestProgressAggregator:
    def _shard_end(self, count):
        return _event(
            "span.end", "shard.traces", duration_s=0.1, attrs={"count": count}
        )

    def test_ewma_rate_and_eta_are_deterministic(self):
        agg = ProgressAggregator(100, unit="traces")
        agg.note_event(self._shard_end(10), now=0.0)
        assert agg.done == 10 and agg.rate is None and agg.eta_s() is None
        agg.note_event(self._shard_end(10), now=1.0)
        assert agg.rate == pytest.approx(10.0)
        assert agg.eta_s() == pytest.approx(8.0)
        line = agg.render_line()
        assert "traces 20/100 (20.0%)" in line
        assert "10.0/s" in line and "ETA 8.0s" in line

    def test_heartbeats_feed_liveness_but_never_completion(self):
        agg = ProgressAggregator(100, unit="traces")
        beat = obs_live.heartbeat_event()
        agg.note_event(beat, now=5.0)
        assert agg.done == 0 and agg.heartbeats == 1
        assert agg.heartbeat_age(5.5) == pytest.approx(0.5)
        assert agg.workers[beat["pid"]]["rss_mb"] is not None
        assert "1 worker(s)" in agg.render_line(5.5)

    def test_cells_unit_follows_the_sweep_counter(self):
        agg = ProgressAggregator(4, unit="cells")
        agg.note_event(
            _event("counter", "sweep.cells_done", value=1.0), now=0.0
        )
        agg.note_event(
            _event("counter", "sweep.cells_done", value=1.0), now=2.0
        )
        assert agg.done == 2 and agg.cells_done == 2
        snapshot = agg.snapshot()
        assert snapshot["unit"] == "cells" and snapshot["total"] == 4
        assert snapshot["rate"] == pytest.approx(0.5)

    def test_unknown_total_renders_without_eta(self):
        agg = ProgressAggregator(None, unit="traces")
        agg.advance(32, now=1.0)
        assert agg.total is None and agg.eta_s() is None
        assert agg.render_line() == "repro: traces 32"


class TestExecutorLiveProtocol:
    def test_events_arrive_mid_map(self):
        received, arrivals = [], []

        def handler(events):
            received.extend(events)
            arrivals.append(time.monotonic())

        executor = get_executor("process", 2)
        executor.on_live_events = handler
        try:
            results = executor.map(_stream_and_sleep, [1, 2])
        finally:
            executor.on_live_events = None
        end = time.monotonic()
        assert results == [2, 4]
        assert "worker.heartbeat" in {event["kind"] for event in received}
        # Delivery happened while the workers were still sleeping, not
        # after the shard results came back.
        assert arrivals[0] < end - 0.25

    def test_handler_error_disables_streaming_not_the_map(self, capsys):
        executor = get_executor("process", 2)
        executor._handler_warned = False
        executor.on_live_events = lambda events: 1 / 0
        try:
            results = executor.map(_stream_and_sleep, [1, 2])
        finally:
            executor.on_live_events = None
        assert results == [2, 4]
        err = capsys.readouterr().err
        assert err.count("live event handler disabled") == 1

    def test_eviction_closes_the_live_channel(self):
        warm_pool(2)
        channel = _pool_channel(default_start_method(), 2)
        assert channel is not None and not channel.closed
        executor = get_executor("process", 2, timeout=3.0)
        executor.on_live_events = lambda events: None
        with pytest.raises(ShardTimeoutError):
            executor.map(_die, [0, 1])
        # The channel died with its pool: no heartbeats survive the
        # eviction, and draining the corpse is a safe no-op.
        assert channel.closed
        assert channel.drain() == []
        assert _pool_channel(default_start_method(), 2) is None

    def test_warm_pool_stats_counts_pools_and_workers(self):
        shutdown_pools()
        assert warm_pool_stats() == (0, 0)
        warm_pool(2)
        assert warm_pool_stats() == (1, 2)
        shutdown_pools()
        assert warm_pool_stats() == (0, 0)


class TestShardTimeoutHeartbeatContext:
    def test_plain_message_is_unchanged_without_heartbeats(self):
        error = ShardTimeoutError(1, 5.0)
        assert "heartbeat" not in str(error)
        assert error.heartbeat_age is None

    def test_recent_heartbeat_reads_alive_but_slow(self):
        error = ShardTimeoutError(1, 5.0, heartbeat_age=1.5, heartbeat_s=1.0)
        assert "last worker heartbeat was 1.5s ago" in str(error)
        assert "alive but slow?" in str(error)

    def test_stale_heartbeat_reads_dead(self):
        error = ShardTimeoutError(1, 5.0, heartbeat_age=30.0, heartbeat_s=1.0)
        assert "dead since then?" in str(error)

    def test_pickles_with_heartbeat_context(self):
        error = pickle.loads(
            pickle.dumps(
                ShardTimeoutError(3, 2.5, heartbeat_age=9.0, heartbeat_s=0.5)
            )
        )
        assert error.payload_index == 3 and error.timeout == 2.5
        assert error.heartbeat_age == 9.0 and error.heartbeat_s == 0.5
        # The 2-arg shape older callers pickle keeps working.
        legacy = pickle.loads(pickle.dumps(ShardTimeoutError(3, 2.5)))
        assert legacy.heartbeat_age is None


class TestLiveBitIdentity:
    def test_live_matches_buffered_and_untraced(self):
        untraced = _flow(
            ExecutionConfig(workers=2, shard_size=SHARD), obs=ObservabilityConfig()
        ).traces()
        serial, _ = _run_live(ExecutionConfig(shard_size=SHARD))
        live, events = _run_live(ExecutionConfig(workers=2, shard_size=SHARD))
        assert any(e["kind"] == "worker.heartbeat" for e in events)
        assert np.array_equal(untraced.traces, live.traces)
        assert np.array_equal(untraced.plaintexts, live.plaintexts)
        assert np.array_equal(serial.traces, live.traces)

    def test_live_spawn_matches_fork(self):
        fork, _ = _run_live(
            ExecutionConfig(workers=2, shard_size=SHARD, start_method="fork")
        )
        spawn, events = _run_live(
            ExecutionConfig(workers=2, shard_size=SHARD, start_method="spawn")
        )
        assert any(e["kind"] == "worker.heartbeat" for e in events)
        assert np.array_equal(fork.traces, spawn.traces)
        assert np.array_equal(fork.plaintexts, spawn.plaintexts)

    def test_live_assessment_verdict_matches_untraced(self):
        def verdict(obs):
            config = FlowConfig(
                name="live_verdict",
                campaign=CampaignConfig(key=0xB, trace_count=64),
                assessment=AssessmentConfig(
                    enabled=True, traces_per_class=200, chunk_size=128
                ),
                execution=ExecutionConfig(workers=2, shard_size=128),
                obs=obs,
            )
            flow = DesignFlow.sbox(config=config)
            details = flow.run(["assessment"])["assessment"].details
            return {
                key: value
                for key, value in details.items()
                if key == "leaks" or key.endswith("_max_abs_t")
            }

        buffer = []
        with use_observer(Observer((BufferSink(buffer),))):
            live = verdict(LIVE_OBS)
        untraced = verdict(ObservabilityConfig())
        assert live == untraced
        assert any(e["name"] == "shard.assessment" for e in buffer)

    def test_full_live_queue_never_corrupts_results(self, monkeypatch):
        # A 1-slot queue overflows immediately; every drop must leave
        # the buffered path -- and therefore the results -- untouched.
        shutdown_pools()  # force fresh pools built with the tiny queue
        monkeypatch.setattr(obs_live, "LIVE_QUEUE_SIZE", 1)
        try:
            untraced = _flow(
                ExecutionConfig(workers=2, shard_size=SHARD),
                obs=ObservabilityConfig(),
            ).traces()
            live, _ = _run_live(ExecutionConfig(workers=2, shard_size=SHARD))
            assert np.array_equal(untraced.traces, live.traces)
            assert np.array_equal(untraced.plaintexts, live.plaintexts)
        finally:
            shutdown_pools()  # do not leak 1-slot pools to other tests


class TestLiveEndToEnd:
    def test_heartbeats_and_progress_reach_the_parent_observer(self):
        _, events = _run_live(ExecutionConfig(workers=2, shard_size=SHARD))
        kinds = {event["kind"] for event in events}
        assert "worker.heartbeat" in kinds
        assert "progress" in kinds

        heartbeat = next(
            e for e in events if e["kind"] == "worker.heartbeat"
        )
        assert heartbeat["attrs"]["rss_mb"] >= 0
        assert heartbeat["pid"] != os.getpid()

        progress = [e for e in events if e["kind"] == "progress"]
        assert all(e["name"] == "engine.progress" for e in progress)
        final = progress[-1]["attrs"]
        assert final["unit"] == "traces" and final["done"] == TRACES

    def test_buffered_replay_stays_the_single_delivery(self):
        # The anti-double-count contract: live copies feed the display
        # only, so each shard's span.end appears exactly once.
        _, events = _run_live(ExecutionConfig(workers=2, shard_size=SHARD))
        shard_ends = [
            e
            for e in events
            if e["kind"] == "span.end" and e["name"] == "shard.traces"
        ]
        assert len(shard_ends) == TRACES // SHARD

    def test_resource_gauges_are_sampled(self):
        _, events = _run_live(ExecutionConfig(workers=2, shard_size=SHARD))
        gauges = {e["name"] for e in events if e["kind"] == "gauge"}
        assert {
            "proc.rss_mb",
            "executor.pools",
            "executor.pool_workers",
            "transport.segments",
        } <= gauges

    def test_serial_runs_skip_the_live_machinery(self):
        traces, events = _run_live(ExecutionConfig(workers=1, shard_size=SHARD))
        kinds = {event["kind"] for event in events}
        assert "worker.heartbeat" not in kinds
        assert traces.traces.shape[0] == TRACES


class TestSweepLive:
    def test_sweep_streams_heartbeats_and_counts_cells(self, tmp_path):
        base = FlowConfig(
            name="swp",
            campaign=CampaignConfig(trace_count=32),
            execution=ExecutionConfig(store=str(tmp_path / "store")),
            obs=ObservabilityConfig(
                sinks=("null",), live=True, heartbeat_s=0.05, live_interval_s=0.0
            ),
        )
        buffer = []
        with use_observer(Observer((BufferSink(buffer),))):
            report = run_sweep(base, {"gate_style": ["sabl", "cvsl"]}, workers=2)
        assert len(report.cells) == 2
        kinds = {event["kind"] for event in buffer}
        assert "worker.heartbeat" in kinds
        cells_done = sum(
            event["value"]
            for event in buffer
            if event["kind"] == "counter" and event["name"] == "sweep.cells_done"
        )
        assert cells_done == 2.0
        progress = [e for e in buffer if e["kind"] == "progress"]
        assert progress and progress[-1]["attrs"]["unit"] == "cells"
        assert progress[-1]["attrs"]["done"] == 2


class TestObsConfig:
    def test_live_knobs_validate(self):
        with pytest.raises(ConfigError, match="heartbeat_s"):
            ObservabilityConfig(heartbeat_s=0.0)
        with pytest.raises(ConfigError, match="live_interval_s"):
            ObservabilityConfig(live_interval_s=-1.0)
        config = ObservabilityConfig(live=True, heartbeat_s=0.5)
        assert ObservabilityConfig.from_dict(config.to_dict()) == config

    def test_live_alone_activates_obs(self):
        assert not ObservabilityConfig().active
        assert ObservabilityConfig(live=True).active

    def test_live_knobs_stay_out_of_store_keys(self, tmp_path):
        execution = ExecutionConfig(
            shard_size=SHARD, store=str(tmp_path / "store")
        )
        _flow(execution, obs=ObservabilityConfig()).traces()
        buffer = []
        with use_observer(Observer((BufferSink(buffer),))):
            _flow(execution, obs=LIVE_OBS).traces()
        hits = [e for e in buffer if e["name"] == "store.hit"]
        misses = [e for e in buffer if e["name"] == "store.miss"]
        assert hits and not misses


class TestCli:
    def _traced_run(self, tmp_path):
        trace = tmp_path / "events.jsonl"
        code = main(
            [
                "run", "--set", "trace_count=64", "--shard-size", "16",
                "--workers", "2", "--trace", str(trace),
                "--live", "--heartbeat", "0.05",
                "--store", str(tmp_path / "store"),
            ]
        )
        assert code == 0
        return trace

    def test_live_run_lands_heartbeats_in_the_trace(self, tmp_path, capsys):
        trace = self._traced_run(tmp_path)
        capsys.readouterr()
        summary = summarize_trace_file(str(trace))
        assert summary.errors == 0
        assert summary.heartbeats > 0
        assert summary.to_dict()["heartbeats"] == summary.heartbeats

    def test_top_once_renders_the_status_block(self, tmp_path, capsys):
        trace = self._traced_run(tmp_path)
        capsys.readouterr()
        assert main(["top", str(trace), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro: traces" in out
        assert "heartbeats" in out
        assert "Workers" in out and "rss [MB]" in out
        assert "Busiest spans" in out

    def test_trace_summary_follow_with_duration(self, tmp_path, capsys):
        trace = self._traced_run(tmp_path)
        capsys.readouterr()
        code = main(
            ["trace", "summary", str(trace), "--follow", "--duration", "0.3"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Trace summary:" in captured.out
        assert "repro: traces" in captured.err  # the follow status line

    def test_progress_implies_live(self):
        from repro.engine.cli import _obs_overrides, build_parser

        args = build_parser().parse_args(["run", "--progress"])
        config = _obs_overrides(args, FlowConfig(name="x"))
        assert config.obs.live and config.obs.progress

        args = build_parser().parse_args(["run", "--heartbeat", "0.2"])
        config = _obs_overrides(args, FlowConfig(name="x"))
        assert config.obs.live and config.obs.heartbeat_s == 0.2
        assert not config.obs.progress


class TestPerfBenchmark:
    def test_obs_benchmark_is_registered(self):
        from repro.perf import benchmark_names, get_benchmark

        assert "obs" in benchmark_names()
        specs = {spec.name for spec in get_benchmark("obs").metrics}
        assert {"untraced_tps", "traced_tps", "overhead_ratio"} <= specs
