"""Unit tests for the switch-level netlist data structures."""

import pytest

from repro.boolexpr import Not, Var
from repro.network import DifferentialPullDownNetwork, Literal, NodeNameAllocator, Transistor


class TestLiteral:
    def test_complement(self):
        literal = Literal("A", True)
        assert literal.complement() == Literal("A", False)
        assert literal.complement().complement() == literal

    def test_evaluate_both_rails(self):
        assert Literal("A", True).evaluate({"A": True}) is True
        assert Literal("A", False).evaluate({"A": True}) is False
        assert Literal("A", False).evaluate({"A": False}) is True

    def test_to_and_from_expr(self):
        assert Literal.from_expr(Var("A")) == Literal("A", True)
        assert Literal.from_expr(Not(Var("A"))) == Literal("A", False)
        assert Literal("B", False).to_expr() == Not(Var("B"))

    def test_from_expr_rejects_compound(self):
        with pytest.raises(ValueError):
            Literal.from_expr(Var("A") & Var("B"))

    def test_rail_name(self):
        assert Literal("A", True).rail_name == "A"
        assert Literal("A", False).rail_name == "A_b"


class TestTransistor:
    def test_conducts_follows_gate(self):
        device = Transistor("M1", Literal("A", True), "X", "n1")
        assert device.conducts({"A": True})
        assert not device.conducts({"A": False})

    def test_other_terminal(self):
        device = Transistor("M1", Literal("A", True), "X", "n1")
        assert device.other_terminal("X") == "n1"
        assert device.other_terminal("n1") == "X"
        with pytest.raises(ValueError):
            device.other_terminal("Z")

    def test_with_terminals_preserves_metadata(self):
        device = Transistor("M1", Literal("A", True), "X", "n1", width=2.0, role="dummy")
        moved = device.with_terminals("X", "n2")
        assert moved.width == 2.0 and moved.role == "dummy" and moved.gate == device.gate


class TestNodeNameAllocator:
    def test_fresh_skips_existing(self):
        allocator = NodeNameAllocator(["n1", "n2"])
        assert allocator.fresh() == "n3"

    def test_reserve(self):
        allocator = NodeNameAllocator()
        allocator.reserve("n1")
        assert allocator.fresh() == "n2"


class TestDifferentialPullDownNetwork:
    def build_simple(self):
        dpdn = DifferentialPullDownNetwork("test", function=Var("A"))
        dpdn.add_transistor(Literal("A", True), "X", "Z")
        dpdn.add_transistor(Literal("A", False), "Y", "Z")
        return dpdn

    def test_external_nodes_must_differ(self):
        with pytest.raises(ValueError):
            DifferentialPullDownNetwork(x="X", y="X", z="Z")

    def test_nodes_and_internal_nodes(self):
        dpdn = self.build_simple()
        dpdn.add_transistor(Literal("B", True), "X", "n1")
        assert set(dpdn.nodes()) == {"X", "Y", "Z", "n1"}
        assert dpdn.internal_nodes() == ["n1"]

    def test_variables_sorted(self):
        dpdn = self.build_simple()
        dpdn.add_transistor(Literal("C", True), "X", "n1")
        dpdn.add_transistor(Literal("B", False), "n1", "Z")
        assert dpdn.variables() == ["A", "B", "C"]

    def test_duplicate_device_name_rejected(self):
        dpdn = self.build_simple()
        with pytest.raises(ValueError):
            dpdn.add_transistor(Literal("B", True), "X", "Z", name="M1")

    def test_shorted_device_rejected(self):
        dpdn = self.build_simple()
        with pytest.raises(ValueError):
            dpdn.add_transistor(Literal("B", True), "X", "X")

    def test_remove_transistor(self):
        dpdn = self.build_simple()
        removed = dpdn.remove_transistor("M1")
        assert removed.name == "M1"
        assert dpdn.device_count() == 1
        with pytest.raises(KeyError):
            dpdn.remove_transistor("M1")

    def test_move_terminal(self):
        dpdn = self.build_simple()
        dpdn.add_transistor(Literal("B", True), "X", "n1", name="MB")
        moved = dpdn.move_terminal("MB", "X", "Y")
        assert moved.terminals() == ("Y", "n1")
        assert dpdn.get_transistor("MB").touches("Y")

    def test_move_terminal_rejects_short(self):
        dpdn = self.build_simple()
        with pytest.raises(ValueError):
            dpdn.move_terminal("M1", "X", "Z")

    def test_move_terminal_rejects_unknown_node(self):
        dpdn = self.build_simple()
        with pytest.raises(ValueError):
            dpdn.move_terminal("M1", "n9", "Y")

    def test_copy_is_independent(self):
        dpdn = self.build_simple()
        duplicate = dpdn.copy()
        duplicate.add_transistor(Literal("B", True), "X", "n1")
        assert dpdn.device_count() == 2
        assert duplicate.device_count() == 3

    def test_renamed_nodes(self):
        dpdn = self.build_simple()
        renamed = dpdn.renamed_nodes({"X": "top", "Z": "gnd"})
        assert renamed.x == "top" and renamed.z == "gnd"
        assert {t.drain for t in renamed.transistors} == {"top", "Y"}

    def test_conducting_transistors(self):
        dpdn = self.build_simple()
        conducting = dpdn.conducting_transistors({"A": True})
        assert [t.name for t in conducting] == ["M1"]

    def test_adjacency_with_and_without_assignment(self):
        dpdn = self.build_simple()
        full = dpdn.adjacency()
        assert len(full["Z"]) == 2
        conducting = dpdn.adjacency({"A": False})
        assert len(conducting["Z"]) == 1

    def test_describe_and_repr(self):
        dpdn = self.build_simple()
        text = dpdn.describe()
        assert "M1" in text and "A_b" in text
        assert "devices=2" in repr(dpdn)

    def test_iteration_and_len(self):
        dpdn = self.build_simple()
        assert len(dpdn) == 2
        assert [t.name for t in dpdn] == ["M1", "M2"]
