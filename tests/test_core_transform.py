"""Unit tests for the Section 4.2 transformation of existing DPDNs."""

import pytest

from repro.boolexpr import parse
from repro.core import (
    NotDualError,
    check_device_count_preserved,
    synthesize_fc_dpdn,
    transform_to_fc,
    transform_to_fc_with_moves,
    verify_gate,
)
from repro.network import build_dpdn_from_branches, build_genuine_dpdn, is_fully_connected


class TestAndNand:
    def test_transform_produces_fully_connected_network(self, and2, and2_genuine):
        transformed = transform_to_fc(and2_genuine)
        assert is_fully_connected(transformed)
        assert verify_gate(transformed, and2).passed

    def test_device_count_preserved(self, and2_genuine):
        transformed = transform_to_fc(and2_genuine)
        assert check_device_count_preserved(and2_genuine, transformed).passed

    def test_exactly_one_repositioned_device(self, and2_genuine):
        # Fig. 2: repositioning transistor M2 (driven by ~A) from between
        # Y and Z to between Y and W is the whole transformation.
        result = transform_to_fc_with_moves(and2_genuine)
        assert len(result.moves) == 1
        assert result.moves[0].gate == "~A"

    def test_original_network_is_not_modified(self, and2_genuine):
        before = [(t.name, t.drain, t.source) for t in and2_genuine.transistors]
        transform_to_fc(and2_genuine)
        after = [(t.name, t.drain, t.source) for t in and2_genuine.transistors]
        assert before == after


class TestOai22Fig5:
    def test_design_example(self, oai22):
        genuine = build_genuine_dpdn(oai22, name="OAI22_genuine")
        result = transform_to_fc_with_moves(genuine)
        assert is_fully_connected(result.dpdn)
        assert verify_gate(result.dpdn, oai22).passed
        assert result.dpdn.device_count() == genuine.device_count() == 8
        assert len(result.moves) >= 2  # one per series level of the example

    def test_both_methods_agree_on_key_metrics(self, oai22):
        genuine = build_genuine_dpdn(oai22)
        transformed = transform_to_fc(genuine)
        synthesized = synthesize_fc_dpdn(oai22)
        assert transformed.device_count() == synthesized.device_count()
        assert len(transformed.internal_nodes()) == len(synthesized.internal_nodes())


class TestGeneralTransform:
    def test_representative_cells(self, representative_function):
        name, function = representative_function
        if name == "XOR2":
            pytest.skip("XOR lowering duplicates literals; covered by the synthesis path")
        genuine = build_genuine_dpdn(function, name=name)
        transformed = transform_to_fc(genuine)
        assert is_fully_connected(transformed), name
        assert verify_gate(transformed, function).passed, name
        assert transformed.device_count() == genuine.device_count()

    def test_single_literal_network_is_unchanged(self):
        genuine = build_genuine_dpdn(parse("A"))
        result = transform_to_fc_with_moves(genuine)
        assert result.moves == []
        assert result.dpdn.device_count() == 2

    def test_moves_have_readable_description(self, oai22):
        genuine = build_genuine_dpdn(oai22)
        result = transform_to_fc_with_moves(genuine)
        text = result.describe()
        assert "move" in text and "repositioned" in text


class TestRejectedInputs:
    def test_non_complementary_branches_rejected(self):
        broken = build_dpdn_from_branches(parse("A & B"), parse("~A & ~B"))
        with pytest.raises(NotDualError):
            transform_to_fc(broken)

    def test_fully_connected_input_rejected(self, and2_fc):
        # FC networks share devices between branches; 4.2 takes genuine
        # networks as input, not as output.
        with pytest.raises((NotDualError, ValueError)):
            transform_to_fc(and2_fc)

    def test_structurally_mismatched_branches_rejected(self):
        # f realised as a 2-stack against a complement realised with a
        # redundant, non-dual factored form.
        broken = build_dpdn_from_branches(parse("A & B"), parse("(~A & ~B) | (~A & B & ~B)"))
        with pytest.raises((NotDualError, ValueError)):
            transform_to_fc(broken)
