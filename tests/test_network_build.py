"""Unit tests for genuine (series/parallel) DPDN construction."""

import pytest

from repro.boolexpr import complement, parse, to_nnf
from repro.network import (
    build_branch,
    build_dpdn_from_branches,
    build_genuine_dpdn,
    realized_function,
)


def branch_function_table(dpdn, expected):
    """Helper: compare branch conduction against the expected function."""
    table = realized_function(dpdn)
    for assignment, (x_on, y_on) in table.items():
        env = dict(assignment)
        assert x_on == bool(expected.evaluate(env)), assignment
        assert y_on == (not x_on), assignment


class TestGenuineConstruction:
    def test_and2_structure_matches_fig2_left(self, and2_genuine):
        # X--[A]--W--[B]--Z  plus  Y--[~A]--Z || Y--[~B]--Z
        assert and2_genuine.device_count() == 4
        assert len(and2_genuine.internal_nodes()) == 1

    def test_and2_function(self, and2, and2_genuine):
        branch_function_table(and2_genuine, and2)

    def test_or2_has_no_internal_node_on_true_branch(self):
        dpdn = build_genuine_dpdn(parse("A | B"))
        # The OR branch is parallel (no internal node); the complement
        # branch ~A & ~B is a 2-stack with one internal node.
        assert len(dpdn.internal_nodes()) == 1

    def test_device_count_equals_literal_counts(self, representative_function):
        name, function = representative_function
        nnf = to_nnf(function)
        dpdn = build_genuine_dpdn(function, name=name)
        expected = nnf.literal_count() + complement(nnf).literal_count()
        assert dpdn.device_count() == expected

    def test_function_realised_for_representative_cells(self, representative_function):
        name, function = representative_function
        dpdn = build_genuine_dpdn(function, name=name)
        branch_function_table(dpdn, function)

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            build_genuine_dpdn(parse("A & ~A & 0"))


class TestBranchBuilder:
    def test_single_literal_branch(self):
        branch = build_branch(parse("A"))
        assert branch.device_count() == 1

    def test_series_branch_creates_internal_nodes(self):
        branch = build_branch(parse("A & B & C"))
        assert branch.device_count() == 3
        assert len(branch.internal_nodes()) == 2

    def test_parallel_branch_creates_no_internal_nodes(self):
        branch = build_branch(parse("A | B | C"))
        assert branch.device_count() == 3
        assert branch.internal_nodes() == []


class TestCustomBranches:
    def test_build_from_explicit_branches(self):
        dpdn = build_dpdn_from_branches(parse("A & B"), parse("~A | ~B"))
        branch_function_table(dpdn, parse("A & B"))

    def test_mismatched_branches_detected_by_verifier(self):
        from repro.core import check_differential_function

        broken = build_dpdn_from_branches(parse("A & B"), parse("~A & ~B"))
        assert not check_differential_function(broken, parse("A & B")).passed
