"""The flow pipeline's streaming assessment stage, end to end."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.flow import (
    ASSESSMENTS,
    AssessmentConfig,
    CampaignConfig,
    ConfigError,
    DesignFlow,
    FlowConfig,
    FlowError,
    register_assessment,
)
from repro.flow.registry import get_assessment


def _assessed_flow(gate_style, network_style, traces_per_class=400, **overrides):
    config = FlowConfig(
        name=f"{gate_style}_{network_style}",
        campaign=CampaignConfig(
            key=0xB, gate_style=gate_style, network_style=network_style,
            trace_count=64,
        ),
        assessment=AssessmentConfig(
            enabled=True, methods=("ttest", "stats"),
            traces_per_class=traces_per_class, chunk_size=256, **overrides,
        ),
    )
    return DesignFlow.sbox(config=config)


class TestAssessmentConfig:
    def test_defaults_validate(self):
        config = AssessmentConfig()
        assert not config.enabled
        assert config.threshold == 4.5

    def test_validation_errors(self):
        with pytest.raises(ConfigError):
            AssessmentConfig(methods=())
        with pytest.raises(ConfigError):
            AssessmentConfig(methods="ttest")  # a bare string, not a tuple
        with pytest.raises(ConfigError):
            AssessmentConfig(traces_per_class=1)
        with pytest.raises(ConfigError):
            AssessmentConfig(chunk_size=0)
        with pytest.raises(ConfigError):
            AssessmentConfig(orders=(3,))
        with pytest.raises(ConfigError):
            AssessmentConfig(orders=())
        with pytest.raises(ConfigError):
            AssessmentConfig(threshold=0.0)
        with pytest.raises(ConfigError):
            AssessmentConfig(fixed_plaintext=-1)
        with pytest.raises(ConfigError):
            AssessmentConfig(noise=({"std": 0.1},))  # missing the name
        with pytest.raises(ConfigError):
            AssessmentConfig(noise=(42,))

    def test_noise_specs_normalised(self):
        config = AssessmentConfig(noise=("gaussian", {"name": "jitter"}))
        assert config.noise == ({"name": "gaussian"}, {"name": "jitter"})

    def test_single_noise_spec_accepted_unwrapped(self):
        # A bare mapping (or name) is one spec, not a sequence of keys.
        config = AssessmentConfig(noise={"name": "gaussian", "std": 0.02})
        assert config.noise == ({"name": "gaussian", "std": 0.02},)
        assert AssessmentConfig(noise="jitter").noise == ({"name": "jitter"},)

    def test_round_trips_through_json(self):
        config = FlowConfig(
            assessment=AssessmentConfig(
                enabled=True,
                methods=("ttest",),
                orders=(1,),
                noise=({"name": "quantization", "bits": 8},),
            )
        )
        rebuilt = FlowConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config


class TestEndToEnd:
    def test_tvla_separates_protected_from_unprotected(self):
        """The acceptance benchmark: at the same trace count, TVLA flags
        the unprotected CVSL reference and passes the SABL FC-DPDN."""
        unprotected = _assessed_flow("cvsl", "genuine")
        protected = _assessed_flow("sabl", "fc")

        leaky = unprotected.assessment()["ttest"]
        clean = protected.assessment()["ttest"]

        assert leaky.max_abs_t > 4.5
        assert leaky.leaks
        assert clean.max_abs_t < 4.5
        assert not clean.leaks

    def test_assessment_in_report_table_and_json(self):
        flow = _assessed_flow("cvsl", "genuine")
        report = flow.run(["assessment"])

        table = report.format_summary()
        assert "assessment" in table
        assert "leaks=True" in table

        assessment_table = report.format_assessment()
        assert "order-1 |t|" in assessment_table
        assert "LEAKS" in assessment_table

        record = json.loads(report.to_json())
        stage = next(
            stage for stage in record["stages"] if stage["stage"] == "assessment"
        )
        assert stage["details"]["leaks"] is True
        assert stage["details"]["traces"] == 800
        verdicts = record["assessment"]["ttest"]
        assert verdicts["leaks"] is True
        assert len(verdicts["tests"]) == 2

    def test_experiment_records_match_protection_claim(self):
        protected = _assessed_flow("sabl", "fc")
        report = protected.run(["assessment"])
        records = {
            record.experiment_id: record
            for record in report.to_experiment_results()
        }
        record = records["sabl_fc/assess/ttest"]
        assert record.matches_shape
        assert record.paper_value == "no leakage detected"
        # The descriptive stats method carries no verdict: no record.
        assert "sabl_fc/assess/stats" not in records

    def test_model_source_assessment(self):
        config = FlowConfig(
            campaign=CampaignConfig(source="model", trace_count=64),
            assessment=AssessmentConfig(
                enabled=True, traces_per_class=300,
                noise=({"name": "gaussian", "std": 0.5},),
            ),
        )
        flow = DesignFlow.sbox(0xB, config=config)
        result = flow.assessment()["ttest"]
        assert result.leaks  # the unprotected model leaks through the noise
        assert "circuit" not in flow.computed_stages()

    def test_run_includes_assessment_only_when_enabled(self):
        disabled = DesignFlow.sbox(
            0xB,
            config=FlowConfig(campaign=CampaignConfig(trace_count=16)),
        )
        report = disabled.run()
        assert "assessment" not in report.stages()

        enabled = _assessed_flow("sabl", "fc", traces_per_class=50)
        report = enabled.run()
        assert "assessment" in report.stages()

    def test_assessment_cached_and_invalidated_with_circuit(self):
        flow = _assessed_flow("cvsl", "genuine", traces_per_class=50)
        first = flow.result("assessment")
        assert flow.result("assessment") is first
        flow.invalidate("circuit")
        assert "assessment" not in flow.computed_stages()

    def test_fixed_plaintext_bounds_checked(self):
        flow = _assessed_flow("sabl", "fc", fixed_plaintext=16)
        with pytest.raises(FlowError, match="fixed_plaintext"):
            flow.assessment()

    def test_unknown_method_lists_available(self):
        flow = _assessed_flow("sabl", "fc")
        flow.config = flow.config.replace(
            assessment=flow.config.assessment.replace(methods=("nope",))
        )
        with pytest.raises(FlowError, match="unknown assessment"):
            flow.assessment()

    def test_chunk_size_does_not_change_class_budgets(self):
        for chunk_size in (17, 100, 4096):
            flow = _assessed_flow("sabl", "fc", traces_per_class=150)
            flow.config = flow.config.replace(
                assessment=flow.config.assessment.replace(chunk_size=chunk_size)
            )
            result = flow.assessment()["ttest"].test(1)
            assert result.count_fixed == 150
            assert result.count_random == 150

    def test_campaign_noise_std_applies_to_assessment(self):
        quiet = _assessed_flow("cvsl", "genuine", traces_per_class=200)
        noisy = _assessed_flow("cvsl", "genuine", traces_per_class=200)
        noisy.config = noisy.config.replace(
            campaign=noisy.config.campaign.replace(noise_std=0.2)
        )
        t_quiet = abs(quiet.assessment()["ttest"].test(1).statistic)
        t_noisy = abs(noisy.assessment()["ttest"].test(1).statistic)
        assert t_noisy < t_quiet
        details = noisy.result("assessment").details
        assert "gaussian" in details["noise"]

    def test_noise_hides_weak_leakage(self):
        quiet = _assessed_flow("cvsl", "genuine", traces_per_class=200)
        noisy = _assessed_flow(
            "cvsl", "genuine", traces_per_class=200,
            noise=(
                {"name": "gaussian", "std": 0.05},
                {"name": "quantization", "bits": 8},
                {"name": "jitter", "probability": 0.05},
            ),
        )
        t_quiet = quiet.assessment()["ttest"].test(1).statistic
        t_noisy = noisy.assessment()["ttest"].test(1).statistic
        assert abs(t_noisy) < abs(t_quiet)


class TestAssessmentRegistry:
    def test_builtins_registered(self):
        assert "ttest" in ASSESSMENTS
        assert "stats" in ASSESSMENTS

    def test_custom_method_flows_through(self):
        class CountingMethod:
            def __init__(self):
                self.seen = 0

            def update(self, chunk):
                self.seen += len(chunk)

            def finalize(self):
                return self

            @property
            def leaks(self):
                return None

            def to_dict(self):
                return {"method": "counter", "seen": self.seen}

            def summary_rows(self):
                return [["counter", "traces seen", str(self.seen), ""]]

        register_assessment("counter", lambda config: CountingMethod())
        try:
            flow = _assessed_flow("sabl", "fc", traces_per_class=60)
            flow.config = flow.config.replace(
                assessment=flow.config.assessment.replace(methods=("counter",))
            )
            outcome = flow.assessment()["counter"]
            assert outcome.seen == 120
        finally:
            ASSESSMENTS.unregister("counter")

    def test_get_assessment_unknown(self):
        from repro.flow import UnknownBackendError

        with pytest.raises(UnknownBackendError):
            get_assessment("definitely_not_registered")
