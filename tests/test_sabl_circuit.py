"""Unit tests for gate-level circuits, technology mapping and the power simulator."""

import pytest

from repro.boolexpr import parse
from repro.core import synthesize_fc_dpdn
from repro.network import is_fully_connected
from repro.power.crypto import bits_of, keyed_sbox_expressions, present_sbox_lookup
from repro.sabl import (
    CircuitPowerSimulator,
    Connection,
    DifferentialCircuit,
    GateInstance,
    map_expressions,
)


class TestDifferentialCircuit:
    def build_half_adder(self):
        expressions = {"sum": parse("A ^ B"), "carry": parse("A & B")}
        return map_expressions(expressions, max_fanin=2, name="half_adder")

    def test_evaluation_matches_expressions(self):
        circuit = self.build_half_adder()
        for a in (False, True):
            for b in (False, True):
                outputs = circuit.evaluate({"A": a, "B": b})
                assert outputs["sum"] == (a ^ b)
                assert outputs["carry"] == (a and b)

    def test_fanin_bound_is_respected(self):
        circuit = map_expressions({"y": parse("A & B & C & D & E")}, max_fanin=2)
        for gate in circuit.gates:
            assert len(gate.connections) <= 2

    def test_fc_style_produces_fully_connected_gates(self):
        circuit = map_expressions({"y": parse("(A & B) | C")}, network_style="fc")
        assert all(is_fully_connected(gate.dpdn) for gate in circuit.gates)

    def test_genuine_style_produces_leaky_gates(self):
        circuit = map_expressions({"y": parse("(A & B) | (C & D)")}, network_style="genuine")
        assert any(not is_fully_connected(gate.dpdn) for gate in circuit.gates)

    def test_inverted_output_handled_with_buffer(self):
        circuit = map_expressions({"y": parse("~A")})
        assert circuit.evaluate({"A": True})["y"] is False
        assert circuit.evaluate({"A": False})["y"] is True

    def test_undriven_net_rejected(self):
        circuit = DifferentialCircuit(["A"])
        gate = GateInstance(
            name="g1",
            dpdn=synthesize_fc_dpdn(parse("in0 & in1")),
            connections={"in0": Connection("A"), "in1": Connection("missing")},
            output_net="n1",
        )
        with pytest.raises(ValueError):
            circuit.add_gate(gate)

    def test_double_driver_rejected(self):
        circuit = map_expressions({"y": parse("A & B")})
        duplicate = circuit.gates[0]
        with pytest.raises(ValueError):
            circuit.add_gate(duplicate)

    def test_missing_primary_input_rejected(self):
        circuit = map_expressions({"y": parse("A & B")})
        with pytest.raises(ValueError):
            circuit.evaluate({"A": True})

    def test_describe_lists_gates_and_outputs(self):
        circuit = self.build_half_adder()
        text = circuit.describe()
        assert "output sum" in text and "gates" in text

    def test_invalid_mapper_arguments(self):
        with pytest.raises(ValueError):
            map_expressions({"y": parse("A & B")}, max_fanin=1)
        with pytest.raises(ValueError):
            map_expressions({"y": parse("A & B")}, network_style="unknown")


class TestSboxCircuit:
    @pytest.fixture(scope="class")
    def sbox_circuit(self):
        return map_expressions(
            keyed_sbox_expressions(0x5),
            primary_inputs=[f"p{i}" for i in range(4)],
            max_fanin=3,
            network_style="fc",
        )

    def test_sbox_circuit_matches_table(self, sbox_circuit):
        for plaintext in range(16):
            vector = {f"p{i}": bit for i, bit in enumerate(bits_of(plaintext, 4))}
            outputs = sbox_circuit.evaluate(vector)
            value = sum(int(outputs[f"y{bit}"]) << bit for bit in range(4))
            assert value == present_sbox_lookup(plaintext ^ 0x5)

    def test_device_count_is_reported(self, sbox_circuit):
        assert sbox_circuit.device_count() > sbox_circuit.gate_count()


class TestCircuitPowerSimulator:
    def test_fc_circuit_energy_is_constant_after_warmup(self):
        circuit = map_expressions({"y": parse("(A & B) | C")}, network_style="fc")
        simulator = CircuitPowerSimulator(circuit)
        vectors = [
            {"A": a, "B": b, "C": c}
            for a in (False, True)
            for b in (False, True)
            for c in (False, True)
        ]
        energies = simulator.energies(vectors * 2)
        steady = energies[1:]
        assert max(steady) == pytest.approx(min(steady))

    def test_genuine_circuit_energy_varies(self):
        circuit = map_expressions({"y": parse("(A & B) | (C & D)")}, network_style="genuine")
        simulator = CircuitPowerSimulator(circuit)
        vectors = [
            {"A": a, "B": b, "C": c, "D": d}
            for a in (False, True)
            for b in (False, True)
            for c in (False, True)
            for d in (False, True)
        ]
        energies = simulator.energies(vectors * 2)
        steady = energies[4:]
        assert max(steady) > min(steady)

    def test_records_carry_outputs_and_per_gate_breakdown(self):
        circuit = map_expressions({"y": parse("A & B")}, network_style="fc")
        simulator = CircuitPowerSimulator(circuit)
        record = simulator.step({"A": True, "B": False})
        assert record.outputs["y"] is False
        assert sum(record.gate_energy.values()) == pytest.approx(record.total_energy)

    def test_reset_reproduces_the_same_trace(self):
        circuit = map_expressions({"y": parse("(A & B) | (C & D)")}, network_style="genuine")
        simulator = CircuitPowerSimulator(circuit)
        vectors = [{"A": True, "B": True, "C": False, "D": False}, {"A": False, "B": False, "C": True, "D": True}]
        first = simulator.energies(vectors)
        simulator.reset()
        second = simulator.energies(vectors)
        assert first == second
