"""Golden-vector conformance of every registered scenario.

Each scenario ships three views of the same keyed datapath -- Boolean
expressions, a synthesized gate-level circuit and a pure-Python
``encrypt()`` golden reference -- and this suite pins that they agree:
exhaustively at narrow widths, on sampled vectors at wide widths
(marked ``slow``), and against the published PRESENT-80 test vectors
for the full 16-S-box round primitives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sabl.circuit import map_expressions
from repro.scenarios import (
    SCENARIOS,
    PresentRoundScenario,
    ScenarioError,
    make_scenario,
    present80_encrypt,
)
from repro.power.crypto import PRESENT_SBOX

#: Narrow (exhaustively checked) parameters for every registered
#: scenario.  The registry-completeness test fails when a scenario is
#: registered without a conformance entry here.
NARROW_CASES = {
    "sbox": ({}, 0xB),
    "present_round": ({"sboxes": 1}, 0x6),
    "present_rounds": ({"sboxes": 1, "rounds": 3}, 0x9),
}

#: Wide (sampled) parameters, checked at the expression/circuit level
#: on random vectors.
WIDE_CASES = {
    "present_round": ({"sboxes": 4}, 0x2B51),
    "present_rounds": ({"sboxes": 2, "rounds": 2}, 0x5C),
}


def _expression_value(expressions, scenario, plaintext):
    assignment = {
        f"p{i}": bool((plaintext >> i) & 1) for i in range(scenario.input_width)
    }
    return sum(
        int(expressions[f"y{bit}"].evaluate(assignment)) << bit
        for bit in range(scenario.output_width)
    )


def _circuit_value(circuit, scenario, plaintext):
    inputs = {
        f"p{i}": bool((plaintext >> i) & 1) for i in range(scenario.input_width)
    }
    nets = circuit.evaluate_nets(inputs)
    return sum(
        int(nets[circuit.outputs[f"y{bit}"]]) << bit
        for bit in range(scenario.output_width)
    )


def _build_circuit(scenario, network_style="fc"):
    return map_expressions(
        scenario.expressions(),
        primary_inputs=[f"p{i}" for i in range(scenario.input_width)],
        network_style=network_style,
        name=f"{scenario.name}_golden",
    )


def test_every_registered_scenario_has_a_conformance_case():
    assert set(SCENARIOS.names()) == set(NARROW_CASES), (
        "every registered scenario needs a NARROW_CASES entry in the "
        "golden conformance suite"
    )


@pytest.mark.parametrize("name", sorted(NARROW_CASES))
def test_narrow_expressions_match_golden_reference(name):
    params, key = NARROW_CASES[name]
    scenario = make_scenario(name, key=key, params=params)
    expressions = scenario.expressions()
    assert sorted(expressions) == [
        f"y{bit}" for bit in sorted(range(scenario.output_width))
    ]
    for plaintext in range(1 << scenario.input_width):
        assert _expression_value(expressions, scenario, plaintext) == scenario.encrypt(
            plaintext
        )


@pytest.mark.parametrize("name", sorted(NARROW_CASES))
@pytest.mark.parametrize("network_style", ["fc", "genuine"])
def test_narrow_circuit_matches_golden_reference(name, network_style):
    params, key = NARROW_CASES[name]
    scenario = make_scenario(name, key=key, params=params)
    circuit = _build_circuit(scenario, network_style)
    for plaintext in range(1 << scenario.input_width):
        assert _circuit_value(circuit, scenario, plaintext) == scenario.encrypt(
            plaintext
        )


def test_two_sbox_round_circuit_exhaustive():
    scenario = make_scenario("present_round", key=0x6B, params={"sboxes": 2})
    circuit = _build_circuit(scenario)
    for plaintext in range(1 << 8):
        assert _circuit_value(circuit, scenario, plaintext) == scenario.encrypt(
            plaintext
        )


def _bitsliced_values(circuit, scenario, plaintexts):
    """Evaluate ``circuit`` on all ``plaintexts`` through the compiled
    bit-sliced kernel (64 vectors per uint64 word), returning the packed
    output words."""
    from repro.kernel import compile_circuit
    from repro.power.trace import nibble_matrix

    program = compile_circuit(circuit)
    matrix = nibble_matrix(
        np.asarray(plaintexts, dtype=np.uint64), scenario.input_width
    )
    outputs = program.evaluate_outputs(matrix)
    values = np.zeros(len(plaintexts), dtype=np.uint64)
    for bit in range(scenario.output_width):
        values |= outputs[f"y{bit}"].astype(np.uint64) << np.uint64(bit)
    return values


@pytest.mark.parametrize("name", sorted(WIDE_CASES))
def test_wide_circuit_matches_golden_reference_bitsliced(name):
    # The fast (per-push) counterpart of the slow sampled test below:
    # the compiled kernel evaluates hundreds of vectors in bulk, so wide
    # slices get full conformance coverage on every CI run.
    params, key = WIDE_CASES[name]
    scenario = make_scenario(name, key=key, params=params)
    circuit = _build_circuit(scenario)
    rng = np.random.default_rng(20050307)
    samples = rng.integers(0, 1 << scenario.input_width, size=256)
    golden = np.array(
        [scenario.encrypt(int(p)) for p in samples], dtype=np.uint64
    )
    assert np.array_equal(_bitsliced_values(circuit, scenario, samples), golden)


def test_full_width_round_circuit_matches_golden_reference_bitsliced():
    # The full 16-S-box (64-bit) PRESENT round, mapped to gates and
    # checked against the published round function on 512 samples --
    # cheap enough for every push thanks to the bit-sliced evaluator.
    scenario = make_scenario(
        "present_round", key=0x0123_4567_89AB_CDEF, params={"sboxes": 16}
    )
    circuit = _build_circuit(scenario)
    rng = np.random.default_rng(7)
    samples = rng.integers(0, 1 << 62, size=512).astype(np.uint64)
    golden = np.array(
        [scenario.encrypt(int(p)) for p in samples], dtype=np.uint64
    )
    assert np.array_equal(_bitsliced_values(circuit, scenario, samples), golden)


def test_wide_and_multi_round_campaigns_run_bitsliced():
    # Per-push campaign coverage of the widths the event backend made
    # impractically slow: a full-width round and a multi-round datapath,
    # traced through the compiled kernel and pinned to the reference
    # backend trace-for-trace.
    from repro.flow import CampaignConfig, DesignFlow, FlowConfig, ScenarioConfig

    cases = [
        ("present_round", {"sboxes": 16}, 0x0123_4567_89AB_CDEF),
        ("present_rounds", {"sboxes": 2, "rounds": 3}, 0x5C),
    ]
    for name, params, key in cases:
        traces = {}
        for simulator in ("event", "bitslice"):
            flow = DesignFlow(
                None,
                FlowConfig(
                    name=f"{name}_bitslice_ci",
                    campaign=CampaignConfig(
                        key=key,
                        scenario=name,
                        trace_count=96,
                        simulator=simulator,
                    ),
                    scenario=ScenarioConfig(params=params),
                ),
            )
            traces[simulator] = flow.traces()
        assert np.array_equal(
            traces["event"].traces, traces["bitslice"].traces
        ), f"{name} campaign must be bit-identical across simulators"
        assert np.array_equal(
            traces["event"].plaintexts, traces["bitslice"].plaintexts
        )


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(WIDE_CASES))
def test_wide_circuit_matches_golden_reference_on_samples(name):
    params, key = WIDE_CASES[name]
    scenario = make_scenario(name, key=key, params=params)
    circuit = _build_circuit(scenario)
    rng = np.random.default_rng(20050307)
    samples = rng.integers(0, 1 << scenario.input_width, size=48)
    for plaintext in map(int, samples):
        assert _circuit_value(circuit, scenario, plaintext) == scenario.encrypt(
            plaintext
        )


@pytest.mark.slow
def test_full_width_round_expressions_match_on_samples():
    # The 16-S-box (64-bit) PRESENT round stays synthesizable because
    # every output bit's cone of influence is one nibble.
    scenario = make_scenario(
        "present_round", key=0x0123_4567_89AB_CDEF, params={"sboxes": 16}
    )
    expressions = scenario.expressions()
    assert len(expressions) == 64
    assert all(len(expr.variables()) <= 4 for expr in expressions.values())
    rng = np.random.default_rng(7)
    samples = rng.integers(0, 1 << 62, size=24)  # int64-safe sampling
    for plaintext in map(int, samples):
        assert _expression_value(expressions, scenario, plaintext) == scenario.encrypt(
            plaintext
        )


class TestPublishedPresentVectors:
    """The CHES 2007 PRESENT-80 test vectors, via the scenario primitives."""

    VECTORS = [
        (0x0000000000000000, 0x00000000000000000000, 0x5579C1387B228445),
        (0x0000000000000000, 0xFFFFFFFFFFFFFFFFFFFF, 0xE72C46C0F5945049),
        (0xFFFFFFFFFFFFFFFF, 0x00000000000000000000, 0xA112FFC72F68417B),
        (0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFFFFFF, 0x3333DCD3213210D2),
    ]

    @pytest.mark.parametrize("plaintext,key,ciphertext", VECTORS)
    def test_present80_matches_published_vectors(self, plaintext, key, ciphertext):
        assert present80_encrypt(plaintext, key) == ciphertext

    def test_round_function_is_the_published_round(self):
        # One round with a known key equals the by-hand composition of
        # the published layers on the full 64-bit state.
        scenario = PresentRoundScenario(0, PRESENT_SBOX, sboxes=16)
        state = 0x0123_4567_89AB_CDEF
        sboxed = 0
        for nibble in range(16):
            sboxed |= PRESENT_SBOX[(state >> (4 * nibble)) & 0xF] << (4 * nibble)
        permuted = 0
        for bit in range(64):
            destination = 63 if bit == 63 else (16 * bit) % 63
            permuted |= ((sboxed >> bit) & 1) << destination
        assert scenario.encrypt(state) == permuted

    def test_present80_rejects_oversized_inputs(self):
        with pytest.raises(ScenarioError):
            present80_encrypt(1 << 64, 0)
        with pytest.raises(ScenarioError):
            present80_encrypt(0, 1 << 80)


class TestScenarioValidation:
    def test_unknown_scenario_lists_available(self):
        with pytest.raises(KeyError, match="available.*present_round.*sbox"):
            make_scenario("grain", key=0)

    def test_unknown_parameter_names_the_scenario(self):
        with pytest.raises(ScenarioError, match="present_round.*rounds"):
            make_scenario("present_round", key=0, params={"rounds": 2})

    def test_key_must_fit_the_slice(self):
        with pytest.raises(ScenarioError, match="does not fit"):
            make_scenario("present_round", key=1 << 8, params={"sboxes": 2})

    def test_unsupported_sbox_count_rejected(self):
        with pytest.raises(ScenarioError, match="sboxes must be one of"):
            make_scenario("present_round", key=0, params={"sboxes": 3})

    def test_round_scenarios_need_a_4bit_sbox(self):
        with pytest.raises(ScenarioError, match="16-entry"):
            make_scenario("present_round", key=0, sbox="aes")

    def test_expressions_reject_intractable_support(self):
        scenario = make_scenario(
            "present_rounds", key=0, params={"sboxes": 8, "rounds": 3}
        )
        with pytest.raises(ScenarioError, match="reduce rounds or sboxes"):
            scenario.expressions()
