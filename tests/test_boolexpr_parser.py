"""Unit tests for the expression parser."""

import pytest

from repro.boolexpr import And, Not, Or, ParseError, Var, Xor, equivalent, parse


class TestBasicParsing:
    def test_single_variable(self):
        assert parse("A") == Var("A")

    def test_and_symbols(self):
        for text in ("A & B", "A * B", "A . B", "A B"):
            assert parse(text) == And(Var("A"), Var("B")), text

    def test_or_symbols(self):
        for text in ("A | B", "A + B"):
            assert parse(text) == Or(Var("A"), Var("B")), text

    def test_xor(self):
        assert parse("A ^ B") == Xor(Var("A"), Var("B"))

    def test_not_prefix_forms(self):
        assert parse("~A") == Not(Var("A"))
        assert parse("!A") == Not(Var("A"))

    def test_not_postfix(self):
        assert parse("A'") == Not(Var("A"))
        assert parse("A''") == Not(Not(Var("A")))

    def test_constants(self):
        assert parse("1").evaluate({}) is True
        assert parse("0").evaluate({}) is False

    def test_identifier_with_index(self):
        expr = parse("p0 & p1")
        assert expr.variables() == frozenset({"p0", "p1"})


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        assert parse("A & B | C") == Or(And(Var("A"), Var("B")), Var("C"))

    def test_xor_between_and_and_or(self):
        expr = parse("A & B ^ C | D")
        assert expr == Or(Xor(And(Var("A"), Var("B")), Var("C")), Var("D"))

    def test_parentheses_override(self):
        assert parse("A & (B | C)") == And(Var("A"), Or(Var("B"), Var("C")))

    def test_juxtaposition_with_parentheses(self):
        assert parse("(A | B)(C | D)") == And(
            Or(Var("A"), Var("B")), Or(Var("C"), Var("D"))
        )

    def test_postfix_complement_of_group(self):
        expr = parse("((A | B) & (C | D))'")
        assert isinstance(expr, Not)
        assert expr.operand == And(Or(Var("A"), Var("B")), Or(Var("C"), Var("D")))

    def test_nary_collapse(self):
        assert parse("A & B & C") == And(Var("A"), Var("B"), Var("C"))


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "A &", "& A", "(A", "A)", "A @ B", "A ~", "()"],
    )
    def test_malformed_input_raises(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("A & ) B")
        assert "position" in str(excinfo.value)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "A & B",
            "A | B & C",
            "~(A | B)",
            "(A ^ B) ^ C",
            "(A & B) | (~C & D)",
            "((A | B) & (C | D))'",
            "(S & A) | (~S & B)",
        ],
    )
    def test_repr_reparses_to_equivalent_expression(self, text):
        expr = parse(text)
        assert equivalent(expr, parse(repr(expr)))
