"""Unit tests for the Boolean expression AST."""

import pytest

from repro.boolexpr import (
    FALSE,
    TRUE,
    And,
    Const,
    Not,
    Or,
    Var,
    Xor,
    ensure_expr,
    vars_,
)


class TestVar:
    def test_evaluate_reads_assignment(self):
        assert Var("A").evaluate({"A": True}) is True
        assert Var("A").evaluate({"A": False}) is False

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            Var("A").evaluate({"B": True})

    def test_variables(self):
        assert Var("A").variables() == frozenset({"A"})

    def test_equality_and_hash(self):
        assert Var("A") == Var("A")
        assert Var("A") != Var("B")
        assert hash(Var("A")) == hash(Var("A"))
        assert len({Var("A"), Var("A"), Var("B")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Var("")

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Var("A").name = "B"

    def test_vars_helper(self):
        a, b, c = vars_("A", "B", "C")
        assert (a.name, b.name, c.name) == ("A", "B", "C")


class TestConst:
    def test_constants_evaluate(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_equality(self):
        assert TRUE == Const(True)
        assert TRUE != FALSE

    def test_no_variables(self):
        assert TRUE.variables() == frozenset()


class TestOperators:
    def test_and_evaluation(self):
        expr = Var("A") & Var("B")
        assert isinstance(expr, And)
        assert expr.evaluate({"A": True, "B": True}) is True
        assert expr.evaluate({"A": True, "B": False}) is False

    def test_or_evaluation(self):
        expr = Var("A") | Var("B")
        assert isinstance(expr, Or)
        assert expr.evaluate({"A": False, "B": False}) is False
        assert expr.evaluate({"A": False, "B": True}) is True

    def test_xor_evaluation_is_parity(self):
        expr = Xor(Var("A"), Var("B"), Var("C"))
        assert expr.evaluate({"A": True, "B": True, "C": True}) is True
        assert expr.evaluate({"A": True, "B": True, "C": False}) is False

    def test_invert(self):
        expr = ~Var("A")
        assert isinstance(expr, Not)
        assert expr.evaluate({"A": True}) is False

    def test_nary_flattening(self):
        expr = And(Var("A"), And(Var("B"), Var("C")))
        assert len(expr.args) == 3
        assert expr == And(Var("A"), Var("B"), Var("C"))

    def test_flattening_preserves_semantics(self):
        nested = Or(Var("A"), Or(Var("B"), Var("C")))
        flat = Or(Var("A"), Var("B"), Var("C"))
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    env = {"A": a, "B": b, "C": c}
                    assert nested.evaluate(env) == flat.evaluate(env)

    def test_binary_operator_with_python_bool(self):
        expr = Var("A") & True
        assert expr.evaluate({"A": True}) is True

    def test_nary_requires_two_operands(self):
        with pytest.raises(ValueError):
            And(Var("A"))

    def test_bool_context_rejected(self):
        with pytest.raises(TypeError):
            bool(Var("A"))


class TestMetricsAndWalk:
    def test_literal_count_counts_occurrences(self):
        expr = (Var("A") & Var("B")) | (Var("A") & ~Var("C"))
        assert expr.literal_count() == 4

    def test_depth(self):
        assert Var("A").depth() == 0
        assert (Var("A") & Var("B")).depth() == 1
        assert ((Var("A") & Var("B")) | Var("C")).depth() == 2

    def test_walk_yields_all_nodes(self):
        expr = Var("A") & ~Var("B")
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds.count("Var") == 2
        assert kinds.count("Not") == 1
        assert kinds.count("And") == 1

    def test_variables_of_compound(self):
        expr = (Var("A") & Var("B")) | Xor(Var("C"), Var("A"))
        assert expr.variables() == frozenset({"A", "B", "C"})


class TestEnsureExpr:
    def test_accepts_expressions(self):
        expr = Var("A")
        assert ensure_expr(expr) is expr

    def test_accepts_bool_and_int(self):
        assert ensure_expr(True) == TRUE
        assert ensure_expr(0) == FALSE

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_expr("A")

    def test_repr_is_readable(self):
        expr = (Var("A") & ~Var("B")) | Var("C")
        text = repr(expr)
        assert "A" in text and "B" in text and "C" in text
