"""Shared hypothesis strategies for the test-suite.

This module lives next to the tests (rather than inside ``conftest.py``)
so that test modules can import it explicitly: a bare
``from conftest import ...`` is ambiguous when pytest collects from the
repository root, because ``benchmarks/conftest.py`` is imported first
under the same ``conftest`` module name.
"""

from __future__ import annotations

from repro.boolexpr import And, Not, Or, Var, Xor

try:
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except Exception:  # pragma: no cover - hypothesis is an install-time dependency
    HAVE_HYPOTHESIS = False

__all__ = ["HAVE_HYPOTHESIS", "expression_strategy"]

_VARIABLE_NAMES = ("A", "B", "C", "D")


def expression_strategy(max_leaves: int = 8, variables=_VARIABLE_NAMES):
    """Hypothesis strategy producing random Boolean expressions."""
    if not HAVE_HYPOTHESIS:  # pragma: no cover - guarded by importorskip in tests
        raise RuntimeError("hypothesis is not installed")
    literals = st.sampled_from(variables).map(Var) | st.sampled_from(variables).map(
        lambda name: Not(Var(name))
    )

    def extend(children):
        return (
            st.tuples(children, children).map(lambda pair: And(*pair))
            | st.tuples(children, children).map(lambda pair: Or(*pair))
            | st.tuples(children, children).map(lambda pair: Xor(*pair))
            | children.map(Not)
        )

    return st.recursive(literals, extend, max_leaves=max_leaves)
